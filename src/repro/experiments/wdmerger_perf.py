"""wdmerger performance experiments: Table VII.

Measures three execution modes per resolution — original, with feature
extraction (non-stop), and with early termination — then projects each
onto the paper's MPI x OpenMP configurations with the scaling model.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.core.params import IterParam
from repro.engine import InSituEngine, WdMergerApp
from repro.experiments.common import Table
from repro.experiments.scaling import ScalingModel
from repro.instrument.overhead import acceleration_percent, overhead_percent
from repro.parallel.comm import SimComm
from repro.wdmerger import WdMergerSimulation
from repro.wdmerger.diagnostics import DIAGNOSTIC_NAMES
from repro.wdmerger.insitu import DetonationAnalysis

#: Paper Table VII configurations (MPI ranks, OpenMP threads).
TABLE7_CONFIGS = ((8, 1), (8, 2), (8, 4), (16, 1), (16, 2), (32, 1))


@dataclass(frozen=True)
class WdMeasuredRun:
    """One measured wdmerger execution."""

    resolution: int
    iterations: int
    seconds: float
    broadcasts: int = 0
    stopped_at_time: Optional[float] = None
    delay_time: Optional[float] = None


def _attach_analyses(
    sim: WdMergerSimulation,
    engine: InSituEngine,
    *,
    early_stop: bool,
    variables: Sequence[str] = DIAGNOSTIC_NAMES,
):
    total = int(sim.end_time / sim.dt)
    analyses = []
    for variable in variables:
        analyses.append(
            engine.add_analysis(
                DetonationAnalysis(
                    IterParam(0, 0, 1),
                    IterParam(1, total, 1),
                    variable=variable,
                    dt=sim.dt,
                    order=3,
                    batch_size=max(4, total // 12),
                    learning_rate=0.03,
                    epochs_per_batch=4,
                    l2=0.05,
                    min_updates=3,
                    monitor_window=3,
                    monitor_patience=1,
                    terminate_when_trained=early_stop,
                )
            )
        )
    return analyses


_warmed_up = False


def _warmup() -> None:
    """Trigger numpy's lazy imports (median, fft, random) once so they
    do not land inside a timed measurement."""
    global _warmed_up
    if _warmed_up:
        return
    import numpy as np

    np.median(np.arange(8.0))
    np.fft.rfftn(np.zeros((4, 4, 4)))
    sim = WdMergerSimulation(8, end_time=4.0)
    engine = InSituEngine(WdMergerApp(sim), name="warmup")
    _attach_analyses(sim, engine, early_stop=False)
    engine.run()
    _warmed_up = True


def _repeats(resolution: int) -> int:
    """Cheap runs are measured best-of-2 to damp scheduler noise."""
    return 2 if resolution <= 32 else 1


def measure_original(resolution: int) -> WdMeasuredRun:
    _warmup()
    best = None
    for _ in range(_repeats(resolution)):
        sim = WdMergerSimulation(resolution)
        start = time.perf_counter()
        sim.run()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best.seconds:
            best = WdMeasuredRun(
                resolution=resolution,
                iterations=sim.iteration,
                seconds=elapsed,
            )
    return best


def measure_instrumented(
    resolution: int, *, early_stop: bool, ranks: int = 8
) -> WdMeasuredRun:
    _warmup()
    best = None
    for _ in range(_repeats(resolution)):
        sim = WdMergerSimulation(resolution)
        comm = SimComm(ranks)
        engine = InSituEngine(WdMergerApp(sim), comm=comm, name="wdmerger")
        analyses = _attach_analyses(sim, engine, early_stop=early_stop)
        start = time.perf_counter()
        engine.run()
        elapsed = time.perf_counter() - start
        delay = None
        for analysis in analyses:
            if analysis.delay_feature is not None:
                delay = analysis.delay_feature.delay_time
                break
        run = WdMeasuredRun(
            resolution=resolution,
            iterations=sim.iteration,
            seconds=elapsed,
            broadcasts=comm.broadcast_count,
            stopped_at_time=sim.time,
            delay_time=delay,
        )
        if best is None or run.seconds < best.seconds:
            best = run
    return best


def table7(
    resolutions: Sequence[int] = (16, 32, 48),
    configs: Sequence[Tuple[int, int]] = TABLE7_CONFIGS,
) -> Table:
    """Table VII: Orig / No-stop / Ovh / Stop / Acc per configuration."""
    table = Table(
        title="Table VII — wdmerger execution time, overhead and acceleration",
        headers=[
            "MPIxOMP", "Resolution", "Orig(s)", "No-stop(s)", "Ovh(%)",
            "Stop(s)", "Acc(%)",
        ],
        notes=(
            "Paper shape: overhead stays low single-digit percent; "
            "early-termination acceleration grows with resolution "
            "(~48% at 16^3 up to ~67% at 48^3)."
        ),
    )
    measured = {}
    for resolution in resolutions:
        origin = measure_original(resolution)
        nonstop = measure_instrumented(resolution, early_stop=False)
        stop = measure_instrumented(resolution, early_stop=True)
        measured[resolution] = (origin, nonstop, stop)
    for ranks, threads in configs:
        for resolution in resolutions:
            origin, nonstop, stop = measured[resolution]
            model = ScalingModel(
                elements=resolution**3, iterations=origin.iterations
            )
            origin_t = model.configured_time(origin.seconds, ranks, threads)
            bcast = nonstop.broadcasts * model.comm.broadcast(128, ranks)
            nonstop_t = (
                model.configured_time(nonstop.seconds, ranks, threads) + bcast
            )
            stop_t = (
                model.configured_time(stop.seconds, ranks, threads)
                + stop.broadcasts * model.comm.broadcast(128, ranks)
            )
            table.add_row(
                f"{ranks}x{threads}",
                f"{resolution}^3",
                round(origin_t, 4),
                round(nonstop_t, 4),
                round(overhead_percent(origin_t, nonstop_t), 2),
                round(stop_t, 4),
                round(acceleration_percent(origin_t, stop_t), 1),
            )
    return table
