"""Modeled MPI x OpenMP scaling used by the performance tables.

The paper measures wall-clock on real MPI ranks and OpenMP threads; our
substrate executes serially and *models* the parallel dimension (see
README.md).  A configuration's reported time combines:

* the measured serial compute time divided by a communication-aware
  MPI speedup (halo exchange per iteration grows with rank count while
  the per-rank work shrinks — so small problems stop scaling, exactly
  the paper's size-16 wdmerger rows where more ranks run *slower*);
* an Amdahl OpenMP speedup on the remaining per-rank work;
* the per-iteration broadcast charges accumulated by the simulated
  communicator (the feature-extraction overhead channel).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.parallel.cost_model import CommCostModel, ThreadingModel


@dataclass(frozen=True)
class ScalingModel:
    """Maps measured serial seconds to a (ranks, threads) configuration.

    Parameters
    ----------
    elements:
        Total work items per iteration (size^3 or resolution^3).
    iterations:
        Iteration count of the run being scaled.
    halo_seconds_per_element:
        Cost per halo-surface element exchanged per iteration.
    comm:
        Latency/bandwidth model for collective start-ups.
    threading:
        Amdahl model for the OpenMP dimension.
    """

    elements: int
    iterations: int
    halo_seconds_per_element: float = 2.0e-8
    comm: CommCostModel = CommCostModel()
    threading: ThreadingModel = ThreadingModel()

    def __post_init__(self) -> None:
        if self.elements <= 0:
            raise ConfigurationError(
                f"elements must be positive, got {self.elements}"
            )
        if self.iterations <= 0:
            raise ConfigurationError(
                f"iterations must be positive, got {self.iterations}"
            )

    def halo_time(self, ranks: int) -> float:
        """Per-run halo-exchange cost for a 3-D block decomposition."""
        if ranks <= 0:
            raise ConfigurationError(f"ranks must be positive, got {ranks}")
        if ranks == 1:
            return 0.0
        per_rank_elements = self.elements / ranks
        surface = 6.0 * per_rank_elements ** (2.0 / 3.0)
        per_iteration = (
            surface * self.halo_seconds_per_element
            + self.comm.latency_s * np.ceil(np.log2(ranks))
        )
        return float(per_iteration * self.iterations)

    def configured_time(
        self, serial_seconds: float, ranks: int, threads: int
    ) -> float:
        """Wall time of the run on ``ranks`` x ``threads``."""
        if serial_seconds < 0:
            raise ConfigurationError(
                f"serial_seconds must be >= 0, got {serial_seconds}"
            )
        compute = serial_seconds / ranks
        compute = self.threading.scaled_time(compute, threads)
        return compute + self.halo_time(ranks)
