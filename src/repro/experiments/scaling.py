"""Modeled MPI x OpenMP scaling used by the performance tables.

The paper measures wall-clock on real MPI ranks and OpenMP threads; our
substrate executes serially and *models* the parallel dimension (see
README.md).  A configuration's reported time combines:

* the measured serial compute time divided by a communication-aware
  MPI speedup (halo exchange per iteration grows with rank count while
  the per-rank work shrinks — so small problems stop scaling, exactly
  the paper's size-16 wdmerger rows where more ranks run *slower*);
* an Amdahl OpenMP speedup on the remaining per-rank work;
* the per-iteration broadcast charges accumulated by the simulated
  communicator (the feature-extraction overhead channel).

Since the distributed runtime landed, the model is no longer the only
source of scaling numbers: :func:`distributed_crosscheck` runs the
SimComm-backed :class:`~repro.engine.distributed.DistributedEngine` on
a synthetic wide-spatial scenario and compares the *measured* sharded
sampling time (the slowest rank's gather seconds plus the charged
communication ledger) against the model's ideal-division prediction,
so modeled and measured speedups validate each other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.core.providers import HarmonicProvider
from repro.errors import ConfigurationError
from repro.parallel.cost_model import CommCostModel, ThreadingModel


@dataclass(frozen=True)
class ScalingModel:
    """Maps measured serial seconds to a (ranks, threads) configuration.

    Parameters
    ----------
    elements:
        Total work items per iteration (size^3 or resolution^3).
    iterations:
        Iteration count of the run being scaled.
    halo_seconds_per_element:
        Cost per halo-surface element exchanged per iteration.
    comm:
        Latency/bandwidth model for collective start-ups.
    threading:
        Amdahl model for the OpenMP dimension.
    """

    elements: int
    iterations: int
    halo_seconds_per_element: float = 2.0e-8
    comm: CommCostModel = CommCostModel()
    threading: ThreadingModel = ThreadingModel()

    def __post_init__(self) -> None:
        if self.elements <= 0:
            raise ConfigurationError(
                f"elements must be positive, got {self.elements}"
            )
        if self.iterations <= 0:
            raise ConfigurationError(
                f"iterations must be positive, got {self.iterations}"
            )

    def halo_time(self, ranks: int) -> float:
        """Per-run halo-exchange cost for a 3-D block decomposition."""
        if ranks <= 0:
            raise ConfigurationError(f"ranks must be positive, got {ranks}")
        if ranks == 1:
            return 0.0
        per_rank_elements = self.elements / ranks
        surface = 6.0 * per_rank_elements ** (2.0 / 3.0)
        per_iteration = (
            surface * self.halo_seconds_per_element
            + self.comm.latency_s * np.ceil(np.log2(ranks))
        )
        return float(per_iteration * self.iterations)

    def configured_time(
        self, serial_seconds: float, ranks: int, threads: int
    ) -> float:
        """Wall time of the run on ``ranks`` x ``threads``."""
        if serial_seconds < 0:
            raise ConfigurationError(
                f"serial_seconds must be >= 0, got {serial_seconds}"
            )
        compute = serial_seconds / ranks
        compute = self.threading.scaled_time(compute, threads)
        return compute + self.halo_time(ranks)


# ----------------------------------------------------------------------
# measured distributed runs vs the model
# ----------------------------------------------------------------------

#: Synthetic heavy provider: per-location harmonic refinement whose
#: cost is proportional to the gathered block width (location-local,
#: so shard gathers are bit-identical to full-window sweeps).
_crosscheck_provider = HarmonicProvider(256)


def distributed_crosscheck(
    *,
    n_locations: int = 256,
    n_iterations: int = 160,
    ranks: Sequence[int] = (1, 2, 4, 8),
    order: int = 3,
    seed: int = 11,
) -> List[dict]:
    """Cross-check modeled speedups against measured distributed runs.

    Runs one wide-spatial scenario through the SimComm-backed
    :class:`~repro.engine.distributed.DistributedEngine` at each rank
    count.  Per configuration the row reports:

    * ``measured_sample_seconds`` — the slowest rank's gather wall time
      (the parallel sampling time of an iteration-synchronous run);
    * ``comm_seconds`` — the Hockney charges for the per-iteration row
      allreduce, the collective stop agreement and the final statistics
      reduction;
    * ``measured_speedup`` vs ``modeled_speedup`` — the first divides
      the 1-rank sampling time by (measured max-rank + comm), the
      second by the model's ideal division (serial / ranks + comm).

    Fit coefficients are asserted against the 1-rank run within 1e-12,
    so a row can only be reported for runs that reproduce the serial
    result exactly.
    """
    from repro.core.curve_fitting import CurveFitting
    from repro.engine.distributed import DistributedEngine
    from repro.engine.workload import ReplayApp

    rng = np.random.default_rng(seed)
    history = (
        np.cumsum(rng.standard_normal((n_iterations, n_locations)), axis=0)
        + 10.0
    )

    def run(n_ranks: int):
        engine = DistributedEngine(ReplayApp(history), n_ranks=n_ranks)
        analysis = engine.add_analysis(
            CurveFitting(
                _crosscheck_provider,
                (0, n_locations - 1, 1),
                (1, n_iterations, 1),
                order=order,
                lag=1,
                batch_size=max(64, n_locations),
                epochs_per_batch=2,
            )
        )
        result = engine.run()
        return analysis, result

    baseline_analysis, baseline = run(1)
    serial_sample = float(baseline.rank_sample_seconds.sum())
    rows = []
    for n_ranks in ranks:
        analysis, result = run(n_ranks)
        delta = float(
            np.max(
                np.abs(
                    analysis.model.coefficients
                    - baseline_analysis.model.coefficients
                )
            )
        )
        if delta > 1e-12:
            raise ConfigurationError(
                f"{n_ranks}-rank run diverged from serial by {delta:.3e}"
            )
        measured = float(result.max_rank_sample_seconds)
        comm = float(result.comm_seconds)
        rows.append(
            {
                "ranks": n_ranks,
                "serial_sample_seconds": round(serial_sample, 6),
                "measured_sample_seconds": round(measured, 6),
                "comm_seconds": round(comm, 6),
                "measured_speedup": round(
                    serial_sample / (measured + comm), 3
                ),
                "modeled_speedup": round(
                    serial_sample / (serial_sample / n_ranks + comm), 3
                ),
                "max_coefficient_delta": delta,
            }
        )
    return rows
