"""LULESH accuracy experiments: Table I, Figure 4, Table II.

All three share the cached reference run of
:func:`~repro.experiments.common.lulesh_reference`; analyses are
replay-trained on prefixes of the recorded history exactly as the live
in-situ pipeline would see them.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.analysis.accuracy import error_rate
from repro.core.curve_fitting import evaluate_spatial_history
from repro.core.params import IterParam
from repro.core.thresholds import ThresholdDetector, peak_profile
from repro.experiments.common import (
    Table,
    lulesh_reference,
    train_from_history,
)

#: Default analysis hyper-parameters for the LULESH case study.
LULESH_LAG = 10
LULESH_ORDER = 3
WARMUP_ITERATIONS = 50


def _trained_model(
    size: int,
    interval: Tuple[int, int],
    fraction: float,
    *,
    lag: int = LULESH_LAG,
    order: int = LULESH_ORDER,
    seed: int = 0,
):
    ref = lulesh_reference(size)
    window_end = int(fraction * ref.total_iterations)
    analysis = train_from_history(
        ref.history,
        IterParam(interval[0], interval[1], 1),
        IterParam(WARMUP_ITERATIONS, window_end, 1),
        lag=lag,
        order=order,
        seed=seed,
    )
    return analysis, ref


def fit_error_full_run(
    size: int,
    interval: Tuple[int, int],
    fraction: float,
    *,
    lag: int = LULESH_LAG,
    order: int = LULESH_ORDER,
    location: int = None,
) -> float:
    """Curve-fit error (%) of a prefix-trained model over the full run.

    This is one cell of Table I: train on the first ``fraction`` of
    iterations over ``interval``, evaluate one-step predictions against
    the complete recorded history.
    """
    analysis, ref = _trained_model(size, interval, fraction, lag=lag, order=order)
    window = (
        interval if location is None
        else (location - order + 1, location)
    )
    predicted, real = evaluate_spatial_history(
        analysis.model,
        ref.history,
        IterParam(window[0], window[1], 1),
        include_self=analysis.include_self,
        start_iteration=WARMUP_ITERATIONS,
    )
    return error_rate(predicted, real)


def table1(
    size: int = 30,
    fractions: Sequence[float] = (0.4, 0.6, 0.8),
    intervals: Sequence[Tuple[int, int]] = ((1, 10), (10, 20), (20, 30)),
) -> Table:
    """Table I: fit error by location interval x training fraction."""
    table = Table(
        title=f"Table I — curve-fitting error rates (%), domain size {size}",
        headers=["Locations"] + [f"{int(100 * f)}%" for f in fractions],
        notes=(
            "Paper shape: small error for (1,10) everywhere; large "
            "overfit errors for intervals the wave has not reached "
            "within the training window, shrinking as the window grows."
        ),
    )
    for interval in intervals:
        cells = [
            fit_error_full_run(size, interval, fraction)
            for fraction in fractions
        ]
        table.add_row(str(interval), *[round(c, 1) for c in cells])
    return table


def fig4(
    size: int = 30,
    lags: Sequence[int] = (10, 50),
    fractions: Sequence[float] = (0.4, 0.6, 0.8),
    location: int = 10,
) -> Table:
    """Figure 4: fit error at one location for different lag values.

    The paper contrasts lag 50 against lag 100 on a 932-iteration run;
    our calibration runs ~863 iterations with a faster early phase, so
    the matching contrast is the tuned lag (10) against a 5x too-large
    one (50) — the qualitative finding (a well-chosen lag beats an
    oversized one, and the gap closes with more training data) carries.
    """
    table = Table(
        title=f"Fig. 4 — fit error (%) at location {location} by lag, size {size}",
        headers=["Lag"] + [f"{int(100 * f)}%" for f in fractions],
    )
    for lag in lags:
        cells = [
            fit_error_full_run(
                size, (1, location), fraction, lag=lag, location=location
            )
            for fraction in fractions
        ]
        table.add_row(lag, *[round(c, 2) for c in cells])
    return table


#: The paper's Table II threshold list (fractions of the blast velocity).
TABLE2_THRESHOLDS = (
    0.001, 0.002, 0.005, 0.0075, 0.01, 0.02, 0.05, 0.1, 0.2
)


def ground_truth_radius(size: int, threshold: float) -> int:
    """Break-point radius from the complete simulation (the "From Sim."
    column): largest location whose all-run peak exceeds the threshold."""
    ref = lulesh_reference(size)
    profile = peak_profile(ref.history)
    detector = ThresholdDetector(ref.blast_velocity, size)
    locations = list(range(ref.history.shape[1]))
    # Skip the fixed centre node (always zero).
    return detector.break_point(
        locations[1:], profile[1:], threshold
    ).radius


def table2(
    size: int = 30,
    thresholds: Sequence[float] = TABLE2_THRESHOLDS,
    fraction: float = 0.4,
    window: Tuple[int, int] = (1, 10),
) -> Table:
    """Table II: extracted break-point radius vs simulation ground truth.

    One analysis is trained on the window prefix; every threshold is
    then resolved against the same extrapolated peak profile, exactly
    as the in-situ pipeline would answer multiple threshold queries.
    """
    analysis, ref = _trained_model(size, window, fraction)
    analysis.reference_value = ref.blast_velocity
    table = Table(
        title=f"Table II — break-point radius, domain size {size}",
        headers=["Threshold(%)", "From Sim.", "Feat. Extraction", "Difference(%)"],
        notes=(
            "Paper shape: low thresholds saturate at the domain edge "
            "(-16.67%-class error), high thresholds match exactly."
        ),
    )
    for threshold in thresholds:
        truth = ground_truth_radius(size, threshold)
        extracted = analysis.break_point(threshold, size)
        diff = truth - extracted
        pct = 100.0 * diff / extracted if extracted else float("inf")
        table.add_row(
            round(100 * threshold, 2), truth, extracted, f"{diff}({pct:+.2f}%)"
        )
    return table


def coverage(sizes: Sequence[int] = (30, 60, 90), threshold: float = 0.002) -> Table:
    """Region coverage by domain size (the 53.7%/72.3%/71.3% claims)."""
    table = Table(
        title="Break-point coverage by domain size",
        headers=["Size", "Radius", "Coverage(%)"],
    )
    for size in sizes:
        radius = ground_truth_radius(size, threshold)
        table.add_row(size, radius, round(100.0 * radius / size, 1))
    return table


def fig5(size: int = 30, locations: Sequence[int] = tuple(range(1, 11))) -> Table:
    """Figure 5 data: velocity over iterations at locations 1..10.

    Returned as a long-format table (iteration, location, velocity) —
    the plotting-tool-agnostic equivalent of the paper's figure.
    """
    ref = lulesh_reference(size)
    table = Table(
        title=f"Fig. 5 — velocity distribution over iterations, size {size}",
        headers=["iteration", "location", "velocity"],
    )
    step = max(1, ref.total_iterations // 200)
    for it in range(0, ref.total_iterations, step):
        for loc in locations:
            table.add_row(it + 1, loc, float(ref.history[it, loc]))
    return table
