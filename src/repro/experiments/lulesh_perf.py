"""LULESH performance experiments: Table III and Table IV.

Both tables run the mini-app with the O(size^3) 3-D field maintenance
on (the realistic cost profile).  Table III compares plain runs against
runs instrumented with the feature-extraction engine; Table IV measures
early termination.  Since the engine refactor, the Table IV threshold
sweep is ONE instrumented run: all thresholds attach to a single
simulation through shared collection (one provider sweep per collected
iteration), the engine records per-iteration simulation time and
per-analysis dispatch time, and each threshold's cost is reconstructed
at its analysis's early-stop point (simulation time to the stop plus
that analysis's own cost).  MPI x OpenMP configurations are modeled on top of the measured
serial times (see README.md).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.core.params import IterParam
from repro.engine import InSituEngine, LuleshApp
from repro.experiments.common import Table
from repro.experiments.scaling import ScalingModel
from repro.instrument.overhead import overhead_percent, share_percent
from repro.lulesh import LuleshSimulation
from repro.lulesh.insitu import BreakPointAnalysis
from repro.parallel.comm import SimComm


@dataclass(frozen=True)
class MeasuredRun:
    """One measured LULESH execution."""

    size: int
    iterations: int
    seconds: float
    comm_seconds: float = 0.0
    broadcasts: int = 0
    terminated_early: bool = False
    radius: Optional[int] = None

    @property
    def total_seconds(self) -> float:
        return self.seconds + self.comm_seconds


def _provider(domain, loc):
    return domain.xd(loc)


def _provider_batch(domain, locations):
    return domain.xd_batch(locations)


_provider.batch = _provider_batch


def _windows(total_iterations: int, fraction: float):
    """The paper's collection windows: first 10 radial nodes, 40% of run."""
    spatial = IterParam(1, 10, 1)
    temporal = IterParam(50, max(60, int(fraction * total_iterations)), 1)
    return spatial, temporal


def _analysis(
    size: int,
    spatial: IterParam,
    temporal: IterParam,
    *,
    threshold: float,
    early_stop: bool,
    name: str = "break_point",
) -> BreakPointAnalysis:
    return BreakPointAnalysis(
        _provider,
        spatial,
        temporal,
        threshold=threshold,
        max_location=size,
        lag=10,
        order=3,
        # Perf-tuned training settings: larger batches and fewer epochs
        # quarter the per-update cost for ~0.5% extra fit error.
        batch_size=32,
        epochs_per_batch=8,
        terminate_when_trained=early_stop,
        name=name,
    )


def measure_original(size: int) -> MeasuredRun:
    """Plain run, no instrumentation (the "origin" column)."""
    sim = LuleshSimulation(size)
    start = time.perf_counter()
    result = sim.run()
    elapsed = time.perf_counter() - start
    return MeasuredRun(size=size, iterations=result.iterations, seconds=elapsed)


def measure_instrumented(
    size: int,
    total_iterations: int,
    *,
    ranks: int = 1,
    threshold: float = 0.02,
    early_stop: bool = False,
    fraction: float = 0.4,
) -> MeasuredRun:
    """Run with one feature-extraction analysis attached via the engine.

    ``early_stop=False`` is the paper's "non-stop" mode (analysis runs,
    simulation completes); ``early_stop=True`` terminates when the
    analysis confirms its feature or exhausts its window.
    """
    sim = LuleshSimulation(size)
    comm = SimComm(ranks) if ranks > 1 else None
    engine = InSituEngine(LuleshApp(sim), comm=comm, name="lulesh")
    spatial, temporal = _windows(total_iterations, fraction)
    analysis = engine.add_analysis(
        _analysis(
            size, spatial, temporal, threshold=threshold, early_stop=early_stop
        )
    )
    start = time.perf_counter()
    result = engine.run()
    elapsed = time.perf_counter() - start
    return MeasuredRun(
        size=size,
        iterations=result.iterations,
        seconds=elapsed,
        comm_seconds=comm.charged_seconds if comm else 0.0,
        broadcasts=(
            comm.broadcast_count if comm else len(engine.broadcaster.history)
        ),
        terminated_early=result.terminated_early,
        radius=analysis.final_feature().radius,
    )


def measure_sweep(
    size: int,
    total_iterations: int,
    thresholds: Sequence[float],
    *,
    fraction: float = 0.4,
) -> Dict[float, MeasuredRun]:
    """All thresholds in ONE instrumented run through shared collection.

    Every threshold's analysis subscribes to the same (provider,
    spatial, temporal) window, so the velocity field is sampled once
    per collected iteration regardless of how many thresholds ride
    along.  The engine runs under the ``all`` policy; each threshold's
    row reports the iteration at which *its* analysis requested
    termination and the reconstructed solo cost up to that point
    (simulation-step time plus that analysis's own dispatch time) —
    what the run would have cost with only that analysis attached.
    """
    sim = LuleshSimulation(size)
    engine = InSituEngine(
        LuleshApp(sim), policy="all", record_timings=True, name="lulesh-sweep"
    )
    spatial, temporal = _windows(total_iterations, fraction)
    analyses = {}
    for threshold in thresholds:
        analyses[threshold] = engine.add_analysis(
            _analysis(
                size,
                spatial,
                temporal,
                threshold=threshold,
                early_stop=True,
                name=f"threshold_{threshold:g}",
            )
        )
    result = engine.run()
    out = {}
    for threshold, analysis in analyses.items():
        stop = result.stopped_at.get(analysis.name, result.iterations)
        out[threshold] = MeasuredRun(
            size=size,
            iterations=stop,
            seconds=result.solo_seconds(analysis.name),
            terminated_early=stop < total_iterations,
            radius=analysis.final_feature().radius,
        )
    return out


def table3(
    sizes: Sequence[int] = (30, 60, 90),
    ranks: Sequence[int] = (1, 8, 27),
) -> Table:
    """Table III: original vs with-FE execution time and overhead (%).

    One serial pair (origin, non-stop) is measured per size; each MPI
    configuration's row applies the scaling model to both, with the
    broadcast charges added to the instrumented side only.
    """
    table = Table(
        title="Table III — LULESH execution time and FE overhead",
        headers=["MPIxOMP", "Size", "origin(s)", "non-stop(s)", "overhead(%)"],
        notes=(
            "Paper shape: overhead stays low single-digit percent across "
            "all rank counts and sizes."
        ),
    )
    measured = {}
    for size in sizes:
        origin = measure_original(size)
        instrumented = measure_instrumented(
            size, origin.iterations, ranks=max(ranks), early_stop=False
        )
        measured[size] = (origin, instrumented)
    for n_ranks in ranks:
        for size in sizes:
            origin, instrumented = measured[size]
            model = ScalingModel(
                elements=size**3, iterations=origin.iterations
            )
            origin_t = model.configured_time(origin.seconds, n_ranks, 1)
            # Re-price the observed broadcasts for this rank count (a
            # single-rank run pays nothing; wider trees pay more stages).
            bcast = instrumented.broadcasts * model.comm.broadcast(128, n_ranks)
            instr_t = (
                model.configured_time(instrumented.seconds, n_ranks, 1) + bcast
            )
            table.add_row(
                f"{n_ranks}x1",
                f"{size}^3",
                round(origin_t, 4),
                round(instr_t, 4),
                round(overhead_percent(origin_t, instr_t), 2),
            )
    return table


#: Table IV's threshold list.
TABLE4_THRESHOLDS = (0.001, 0.002, 0.005, 0.0075, 0.01, 0.02, 0.05, 0.1, 0.2)


def table4(
    sizes: Sequence[int] = (30, 60, 90),
    thresholds: Sequence[float] = TABLE4_THRESHOLDS,
) -> Table:
    """Table IV: early-termination radius, iterations and time shares.

    Per size: one plain run for the baseline, then one shared-collection
    sweep serving every threshold (previously one early-stop run per
    threshold).
    """
    table = Table(
        title="Table IV — early termination by threshold",
        headers=[
            "Size",
            "Threshold(%)",
            "Radius",
            "Iterations(stop)",
            "% of iterations",
            "Time(s)",
            "% of total time",
        ],
        notes=(
            "Paper shape: low thresholds stop at the training-window "
            "end (~40% of iterations); on larger domains high "
            "thresholds confirm earlier (~20%).  All thresholds of a "
            "size share one instrumented run; each row's time is the "
            "cumulative wall time at its analysis's stop iteration."
        ),
    )
    for size in sizes:
        origin = measure_original(size)
        sweep = measure_sweep(size, origin.iterations, thresholds)
        for threshold in thresholds:
            run = sweep[threshold]
            table.add_row(
                f"{size}^3",
                round(100 * threshold, 2),
                run.radius,
                run.iterations,
                round(share_percent(run.iterations, origin.iterations), 1),
                round(run.total_seconds, 4),
                round(share_percent(run.total_seconds, origin.total_seconds), 1),
            )
    return table
