"""LULESH performance experiments: Table III and Table IV.

Both tables run the mini-app with the O(size^3) 3-D field maintenance
on (the realistic cost profile).  Table III compares plain runs against
runs instrumented with the feature-extraction region; Table IV measures
early termination.  MPI x OpenMP configurations are modeled on top of
the measured serial times (DESIGN.md §2).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.core.params import IterParam
from repro.core.region import Region
from repro.experiments.common import Table
from repro.experiments.scaling import ScalingModel
from repro.instrument.overhead import overhead_percent, share_percent
from repro.lulesh import LuleshSimulation
from repro.lulesh.insitu import BreakPointAnalysis
from repro.parallel.comm import SimComm


@dataclass(frozen=True)
class MeasuredRun:
    """One measured LULESH execution."""

    size: int
    iterations: int
    seconds: float
    comm_seconds: float = 0.0
    broadcasts: int = 0
    terminated_early: bool = False
    radius: Optional[int] = None

    @property
    def total_seconds(self) -> float:
        return self.seconds + self.comm_seconds


def _provider(domain, loc):
    return domain.xd(loc)


def measure_original(size: int) -> MeasuredRun:
    """Plain run, no instrumentation (the "origin" column)."""
    sim = LuleshSimulation(size)
    start = time.perf_counter()
    result = sim.run()
    elapsed = time.perf_counter() - start
    return MeasuredRun(size=size, iterations=result.iterations, seconds=elapsed)


def measure_instrumented(
    size: int,
    total_iterations: int,
    *,
    ranks: int = 1,
    threshold: float = 0.02,
    early_stop: bool = False,
    fraction: float = 0.4,
) -> MeasuredRun:
    """Run with the feature-extraction region attached.

    ``early_stop=False`` is the paper's "non-stop" mode (analysis runs,
    simulation completes); ``early_stop=True`` terminates when the
    analysis confirms its feature or exhausts its window.
    """
    sim = LuleshSimulation(size)
    comm = SimComm(ranks) if ranks > 1 else None
    region = Region("lulesh", sim.domain, comm)
    analysis = BreakPointAnalysis(
        _provider,
        IterParam(1, 10, 1),
        IterParam(50, max(60, int(fraction * total_iterations)), 1),
        threshold=threshold,
        max_location=size,
        lag=10,
        order=3,
        # Perf-tuned training settings: larger batches and fewer epochs
        # quarter the per-update cost for ~0.5% extra fit error.
        batch_size=32,
        epochs_per_batch=8,
        terminate_when_trained=early_stop,
    )
    region.add_analysis(analysis)
    start = time.perf_counter()
    result = sim.run(region)
    elapsed = time.perf_counter() - start
    return MeasuredRun(
        size=size,
        iterations=result.iterations,
        seconds=elapsed,
        comm_seconds=comm.charged_seconds if comm else 0.0,
        broadcasts=comm.broadcast_count if comm else len(region.broadcaster.history),
        terminated_early=result.terminated_early,
        radius=analysis.final_feature().radius,
    )


def table3(
    sizes: Sequence[int] = (30, 60, 90),
    ranks: Sequence[int] = (1, 8, 27),
) -> Table:
    """Table III: original vs with-FE execution time and overhead (%).

    One serial pair (origin, non-stop) is measured per size; each MPI
    configuration's row applies the scaling model to both, with the
    broadcast charges added to the instrumented side only.
    """
    table = Table(
        title="Table III — LULESH execution time and FE overhead",
        headers=["MPIxOMP", "Size", "origin(s)", "non-stop(s)", "overhead(%)"],
        notes=(
            "Paper shape: overhead stays low single-digit percent across "
            "all rank counts and sizes."
        ),
    )
    measured = {}
    for size in sizes:
        origin = measure_original(size)
        instrumented = measure_instrumented(
            size, origin.iterations, ranks=max(ranks), early_stop=False
        )
        measured[size] = (origin, instrumented)
    for n_ranks in ranks:
        for size in sizes:
            origin, instrumented = measured[size]
            model = ScalingModel(
                elements=size**3, iterations=origin.iterations
            )
            origin_t = model.configured_time(origin.seconds, n_ranks, 1)
            # Re-price the observed broadcasts for this rank count (a
            # single-rank run pays nothing; wider trees pay more stages).
            bcast = instrumented.broadcasts * model.comm.broadcast(128, n_ranks)
            instr_t = (
                model.configured_time(instrumented.seconds, n_ranks, 1) + bcast
            )
            table.add_row(
                f"{n_ranks}x1",
                f"{size}^3",
                round(origin_t, 4),
                round(instr_t, 4),
                round(overhead_percent(origin_t, instr_t), 2),
            )
    return table


#: Table IV's threshold list.
TABLE4_THRESHOLDS = (0.001, 0.002, 0.005, 0.0075, 0.01, 0.02, 0.05, 0.1, 0.2)


def table4(
    sizes: Sequence[int] = (30, 60, 90),
    thresholds: Sequence[float] = TABLE4_THRESHOLDS,
) -> Table:
    """Table IV: early-termination radius, iterations and time shares."""
    table = Table(
        title="Table IV — early termination by threshold",
        headers=[
            "Size",
            "Threshold(%)",
            "Radius",
            "Iterations(stop)",
            "% of iterations",
            "Time(s)",
            "% of total time",
        ],
        notes=(
            "Paper shape: low thresholds stop at the training-window "
            "end (~40% of iterations); on larger domains high "
            "thresholds confirm earlier (~20%)."
        ),
    )
    for size in sizes:
        origin = measure_original(size)
        for threshold in thresholds:
            run = measure_instrumented(
                size,
                origin.iterations,
                threshold=threshold,
                early_stop=True,
            )
            table.add_row(
                f"{size}^3",
                round(100 * threshold, 2),
                run.radius,
                run.iterations,
                round(share_percent(run.iterations, origin.iterations), 1),
                round(run.total_seconds, 4),
                round(share_percent(run.total_seconds, origin.total_seconds), 1),
            )
    return table
