"""wdmerger accuracy experiments: Table V, Table VI, Figures 7 and 8.

All share the cached reference run at each resolution.  Training
replays the recorded diagnostic series through the time-axis collector;
evaluation is one-step prediction against the complete series.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.analysis.accuracy import error_rate
from repro.core.params import IterParam
from repro.experiments.common import Table, train_series_from_history, wdmerger_reference
from repro.wdmerger.detonation import delay_time_from_series
from repro.wdmerger.diagnostics import DIAGNOSTIC_NAMES

#: Default analysis hyper-parameters for the wdmerger case study.
WD_ORDER = 3
WD_BATCH = 8


def _trained_model(resolution: int, variable: str, fraction: float, *, seed: int = 0):
    ref = wdmerger_reference(resolution)
    series = ref.series[variable]
    window_end = max(WD_ORDER + 2, int(fraction * ref.total_iterations))
    analysis = train_series_from_history(
        series,
        IterParam(1, window_end, 1),
        order=WD_ORDER,
        batch_size=WD_BATCH,
        learning_rate=0.03,
        epochs_per_batch=4,
        l2=0.05,
        min_updates=2,
        monitor_window=2,
        monitor_patience=1,
        seed=seed,
    )
    return analysis, ref


def fit_error_full_run(
    resolution: int, variable: str, fraction: float
) -> float:
    """One Table V cell: prefix-trained, evaluated over the full series."""
    analysis, ref = _trained_model(resolution, variable, fraction)
    series = ref.series[variable]
    _, predicted, real = analysis.model.one_step_series(series, stride=1)
    return error_rate(predicted, real)


def table5(
    resolution: int = 32,
    fractions: Sequence[float] = (0.1, 0.25, 0.5),
    variables: Sequence[str] = DIAGNOSTIC_NAMES,
) -> Table:
    """Table V: fit error per diagnostic x training fraction."""
    table = Table(
        title=(
            f"Table V — wdmerger curve-fitting error rates (%), "
            f"resolution {resolution}"
        ),
        headers=["Diagnostic"] + [f"{int(100 * f)}%" for f in fractions],
        notes=(
            "Paper shape: error shrinks with more training data; mass "
            "is least sensitive to the training volume."
        ),
    )
    for variable in variables:
        cells = [
            fit_error_full_run(resolution, variable, fraction)
            for fraction in fractions
        ]
        table.add_row(variable, *[round(c, 2) for c in cells])
    return table


def predicted_full_series(
    resolution: int, variable: str, fraction: float = 0.25
):
    """(times, predicted, real) across the whole run — Fig. 7's curves."""
    analysis, ref = _trained_model(resolution, variable, fraction)
    series = ref.series[variable]
    indices, predicted, real = analysis.model.one_step_series(series, stride=1)
    times = ref.times[indices]
    return times, predicted, real


def table6(resolution: int = 32, fraction: float = 0.25) -> Table:
    """Table VI: delay time from extracted features vs ground truth."""
    ref = wdmerger_reference(resolution)
    table = Table(
        title=(
            f"Table VI — detonation delay-time, resolution {resolution} "
            f"(simulation event at t={ref.detonation_time})"
        ),
        headers=["Diagnostic", "From Sim.", "Feat. Extraction", "Difference(%)"],
        notes=(
            "Paper shape: per-diagnostic delay estimates within a few "
            "percent of the full-data value."
        ),
    )
    for variable in DIAGNOSTIC_NAMES:
        truth = delay_time_from_series(ref.times, ref.series[variable])
        times, predicted, _ = predicted_full_series(
            resolution, variable, fraction
        )
        extracted = delay_time_from_series(times, predicted)
        diff = extracted - truth
        pct = 100.0 * diff / truth if truth else float("inf")
        table.add_row(
            variable,
            round(truth, 4),
            round(extracted, 4),
            f"{diff:+.4f}({pct:+.2f}%)",
        )
    return table


def fig7(
    resolution: int = 32,
    fraction: float = 0.25,
    variables: Sequence[str] = DIAGNOSTIC_NAMES,
) -> Dict[str, Table]:
    """Figure 7 data: predicted vs real curves per diagnostic."""
    out = {}
    for variable in variables:
        times, predicted, real = predicted_full_series(
            resolution, variable, fraction
        )
        table = Table(
            title=f"Fig. 7 — {variable}: predicted vs real (25% training)",
            headers=["time", "pred", "real"],
        )
        for t, p, r in zip(times, predicted, real):
            table.add_row(round(float(t), 3), round(float(p), 5), round(float(r), 5))
        out[variable] = table
    return out


def fig8(resolution: int = 32) -> Table:
    """Figure 8 data: normalised diagnostics with inflection markers."""
    ref = wdmerger_reference(resolution)
    table = Table(
        title=f"Fig. 8 — normalised diagnostics over time, resolution {resolution}",
        headers=["time"] + list(DIAGNOSTIC_NAMES),
    )
    normalized = {}
    for name in DIAGNOSTIC_NAMES:
        values = ref.series[name]
        std = float(values.std()) or 1.0
        normalized[name] = (values - values.mean()) / std
    for i, t in enumerate(ref.times):
        table.add_row(
            round(float(t), 3),
            *[round(float(normalized[n][i]), 4) for n in DIAGNOSTIC_NAMES],
        )
    inflections = {
        name: delay_time_from_series(ref.times, ref.series[name])
        for name in DIAGNOSTIC_NAMES
    }
    table.notes = "Inflection (delay) times: " + ", ".join(
        f"{k}={v:.2f}" for k, v in inflections.items()
    )
    return table
