"""CSV export for tables and figure series.

The figures are emitted as data (not rendered images) so any plotting
tool can regenerate them; ``export_all`` writes one CSV per table and
figure into a directory, which is how the paper-style plots in a
downstream notebook are fed.
"""

from __future__ import annotations

import csv
import os
from typing import Dict

from repro.errors import ConfigurationError
from repro.experiments.common import Table


def write_table_csv(table: Table, path: str) -> str:
    """Write one table to ``path`` as CSV; returns the path."""
    directory = os.path.dirname(path)
    if directory and not os.path.isdir(directory):
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(table.headers)
        writer.writerows(table.rows)
    return path


def read_table_csv(path: str) -> Table:
    """Round-trip reader (cells come back as strings)."""
    if not os.path.isfile(path):
        raise ConfigurationError(f"no such CSV: {path}")
    with open(path, newline="") as handle:
        rows = list(csv.reader(handle))
    if not rows:
        raise ConfigurationError(f"empty CSV: {path}")
    table = Table(title=os.path.basename(path), headers=rows[0])
    for row in rows[1:]:
        table.add_row(*row)
    return table


def export_tables(tables: Dict[str, Table], directory: str) -> Dict[str, str]:
    """Write a name → Table mapping to ``directory``; returns paths."""
    paths = {}
    for name, table in tables.items():
        safe = name.replace(" ", "_").replace(".", "").lower()
        paths[name] = write_table_csv(
            table, os.path.join(directory, f"{safe}.csv")
        )
    return paths


def export_all(directory: str, *, quick: bool = True) -> Dict[str, str]:
    """Regenerate and export every accuracy table and figure.

    The performance tables (III, IV, VII) are included only when
    ``quick`` is False — they take minutes at the full grid.
    """
    from repro.experiments import (
        coverage,
        fig4,
        fig5,
        fig7,
        fig8,
        table1,
        table2,
        table5,
        table6,
    )

    tables: Dict[str, Table] = {
        "table1": table1(),
        "fig4": fig4(),
        "table2": table2(),
        "coverage": coverage(),
        "fig5": fig5(),
        "table5": table5(),
        "table6": table6(),
        "fig8": fig8(),
    }
    for name, fig_table in fig7().items():
        tables[f"fig7_{name}"] = fig_table
    if not quick:
        from repro.experiments import table3, table4, table7

        tables["table3"] = table3()
        tables["table4"] = table4()
        tables["table7"] = table7()
    return export_tables(tables, directory)
