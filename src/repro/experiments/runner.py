"""Regenerate every table and figure in one go.

Run as ``python -m repro.experiments.runner`` (add ``--quick`` to trim
the slow performance sweeps).  Output is the paper-style plain-text
tables; this is also what EXPERIMENTS.md's measured numbers come from.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import (
    coverage,
    fig4,
    fig8,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
    table7,
)
from repro.experiments.lulesh_perf import TABLE4_THRESHOLDS


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller sizes / fewer thresholds for the performance tables",
    )
    args = parser.parse_args(argv)

    if args.quick:
        table4_sizes = (30,)
        table4_thresholds = (0.002, 0.02, 0.2)
    else:
        table4_sizes = (30, 60, 90)
        table4_thresholds = TABLE4_THRESHOLDS

    sections = [
        ("Table I", lambda: table1()),
        ("Fig. 4", lambda: fig4()),
        ("Table II", lambda: table2()),
        ("Coverage", lambda: coverage((30, 60) if args.quick else (30, 60, 90))),
        (
            "Table III",
            lambda: table3(sizes=(30, 60) if args.quick else (30, 60, 90)),
        ),
        (
            "Table IV",
            lambda: table4(sizes=table4_sizes, thresholds=table4_thresholds),
        ),
        ("Table V", lambda: table5()),
        ("Table VI", lambda: table6()),
        (
            "Table VII",
            lambda: table7(
                resolutions=(16, 32) if args.quick else (16, 32, 48)
            ),
        ),
        ("Fig. 8", lambda: fig8()),
    ]
    for name, build in sections:
        print()
        print(build().render())
        sys.stdout.flush()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
