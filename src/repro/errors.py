"""Exception hierarchy for the repro package.

All exceptions raised deliberately by this library derive from
:class:`ReproError`, so callers can catch one type at an integration
boundary while still distinguishing configuration mistakes from runtime
failures.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """A user-supplied parameter is invalid or inconsistent.

    Raised eagerly at construction time (e.g. a non-positive model order,
    an iteration range whose ``end`` precedes ``begin``) so mistakes
    surface before a long simulation starts.
    """


class NotTrainedError(ReproError):
    """A prediction was requested from a model with no completed updates."""


class ScenarioError(ConfigurationError):
    """A scenario specification is malformed, duplicated or unknown.

    Raised by the :mod:`repro.scenarios` registry: registering a spec
    whose fields do not satisfy the declarative contract, registering
    two specs under one name, or resolving a name nobody registered.
    """


class CollectionError(ReproError):
    """Data collection observed inconsistent simulation state.

    For example, a variable provider returning a non-finite value, or a
    sample arriving for an iteration earlier than one already recorded.
    """


class SimulationError(ReproError):
    """A substrate simulation (LULESH/wdmerger) became unphysical.

    Raised when the integrator detects NaNs, negative densities or a
    collapsed timestep, which would otherwise silently poison the
    feature extraction downstream.
    """


class CommunicatorError(ReproError):
    """Misuse of the simulated MPI communicator (bad rank, closed comm)."""


class ServeError(ReproError):
    """The analysis server could not satisfy a request.

    Raised by :mod:`repro.serve` for malformed run requests, jobs lost
    to a worker death mid-run, or submissions after shutdown began.
    """
