"""Overhead and acceleration arithmetic for the performance tables.

Small, well-named helpers so the experiment drivers and the paper
tables share one definition:

* overhead % = (instrumented - original) / original * 100  (Tables III, VII)
* acceleration % = (original - early_stop) / original * 100  (Table VII)
* share % = part / whole * 100  (Table IV's "% of total execution time")
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


def overhead_percent(original: float, instrumented: float) -> float:
    """Relative overhead of the instrumented run, in percent."""
    if original <= 0:
        raise ConfigurationError(
            f"original time must be positive, got {original}"
        )
    return 100.0 * (instrumented - original) / original


def acceleration_percent(original: float, early_stopped: float) -> float:
    """Saved fraction of the original run time, in percent."""
    if original <= 0:
        raise ConfigurationError(
            f"original time must be positive, got {original}"
        )
    return 100.0 * (original - early_stopped) / original


def share_percent(part: float, whole: float) -> float:
    """``part`` as a percentage of ``whole``."""
    if whole <= 0:
        raise ConfigurationError(f"whole must be positive, got {whole}")
    return 100.0 * part / whole


@dataclass(frozen=True)
class OverheadReport:
    """One configuration's worth of Table III/VII numbers."""

    original_seconds: float
    instrumented_seconds: float
    early_stop_seconds: float = float("nan")

    @property
    def overhead_seconds(self) -> float:
        return self.instrumented_seconds - self.original_seconds

    @property
    def overhead_pct(self) -> float:
        return overhead_percent(self.original_seconds, self.instrumented_seconds)

    @property
    def acceleration_pct(self) -> float:
        return acceleration_percent(self.original_seconds, self.early_stop_seconds)
