"""Timing and overhead instrumentation."""

from repro.instrument.overhead import (
    OverheadReport,
    acceleration_percent,
    overhead_percent,
    share_percent,
)
from repro.instrument.timers import SectionTimer, Stopwatch

__all__ = [
    "OverheadReport",
    "SectionTimer",
    "Stopwatch",
    "acceleration_percent",
    "overhead_percent",
    "share_percent",
]
