"""Wall-clock instrumentation for overhead measurement.

The paper's overhead numbers are differences between instrumented and
plain execution times.  :class:`SectionTimer` accumulates named
sections (cheap ``perf_counter`` pairs) so an experiment can separate
"simulation" from "feature extraction" time inside a single run, and
:class:`Stopwatch` is the trivial whole-run timer.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict

from repro.errors import ConfigurationError


class Stopwatch:
    """Start/stop wall-clock timer accumulating total seconds."""

    def __init__(self) -> None:
        self._start: float = 0.0
        self._total = 0.0
        self._running = False

    @property
    def running(self) -> bool:
        return self._running

    @property
    def seconds(self) -> float:
        """Accumulated time (including the live span when running)."""
        if self._running:
            return self._total + (time.perf_counter() - self._start)
        return self._total

    def start(self) -> None:
        if self._running:
            raise ConfigurationError("stopwatch already running")
        self._start = time.perf_counter()
        self._running = True

    def stop(self) -> float:
        if not self._running:
            raise ConfigurationError("stopwatch is not running")
        self._total += time.perf_counter() - self._start
        self._running = False
        return self._total

    def reset(self) -> None:
        self._start = 0.0
        self._total = 0.0
        self._running = False


class SectionTimer:
    """Accumulates wall time per named section.

    Use as a context manager::

        timer = SectionTimer()
        with timer.section("simulation"):
            sim.step()
        with timer.section("feature_extraction"):
            region.end(domain)
    """

    def __init__(self) -> None:
        self._totals: Dict[str, float] = {}
        self._counts: Dict[str, int] = {}

    @contextmanager
    def section(self, name: str):
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self._totals[name] = self._totals.get(name, 0.0) + elapsed
            self._counts[name] = self._counts.get(name, 0) + 1

    def seconds(self, name: str) -> float:
        """Accumulated seconds of one section (0 if never entered)."""
        return self._totals.get(name, 0.0)

    def count(self, name: str) -> int:
        """Times the section was entered."""
        return self._counts.get(name, 0)

    def add(self, name: str, seconds: float) -> None:
        """Fold externally modelled time (e.g. simulated comm cost) in."""
        if seconds < 0:
            raise ConfigurationError(f"seconds must be >= 0, got {seconds}")
        self._totals[name] = self._totals.get(name, 0.0) + seconds
        self._counts[name] = self._counts.get(name, 0) + 1

    def totals(self) -> Dict[str, float]:
        return dict(self._totals)
