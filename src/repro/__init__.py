"""repro — real-time auto-regression based in-situ feature extraction.

Reproduction of "A Real-Time, Auto-Regression Method for In-Situ Feature
Extraction in Hydrodynamics Simulations" (ISPASS 2025).

The package is organised as:

``repro.core``
    The paper's primary contribution: a streaming linear auto-regressive
    model trained with mini-batch gradient descent during a simulation,
    plus data collection, curve fitting, variable tracking,
    threshold-based feature extraction and early termination, exposed
    through both a Pythonic object API (:class:`repro.core.Region`) and
    the paper's C-style ``td_*`` facade (:mod:`repro.core.capi`).

``repro.engine``
    The in-situ engine: a unified ``SimulationApp`` workload
    abstraction, shared data collection (each declared data window is
    sampled once per iteration however many analyses subscribe), and a
    multi-analysis scheduler with ``any``/``all``/``quorum``
    termination policies (:class:`repro.engine.InSituEngine`).

``repro.lulesh``
    A LULESH-like Sedov blast hydrodynamics mini-app (Lagrangian,
    leapfrog, artificial viscosity) used for the material deformation
    case study.

``repro.wdmerger``
    A Castro-wdmerger-like binary white dwarf merger simulator used for
    the detonation delay-time case study.

``repro.parallel``
    A simulated MPI communicator and cost model used to measure the
    broadcast overhead the paper reports.

``repro.analysis``
    Accuracy metrics and the traditional post-analysis baseline with an
    I/O cost model.

``repro.experiments``
    Drivers that regenerate every table and figure in the paper's
    evaluation section (see README.md for the architecture overview
    and the experiment index).
"""

from repro.core import (
    ARModel,
    Analysis,
    BreakPointFeature,
    CurveFitting,
    DelayTimeFeature,
    EarlyStopMonitor,
    IterParam,
    MiniBatch,
    MiniBatchTrainer,
    Region,
    ThresholdDetector,
    VariableTracker,
)
from repro.core.capi import (
    Curve_Fitting,
    td_iter_param_init,
    td_region_add_analysis,
    td_region_begin,
    td_region_end,
    td_region_init,
)
from repro.engine import (
    CadenceController,
    CadencePolicy,
    InSituEngine,
    LuleshApp,
    ReplayApp,
    SharedCollector,
    SimulationApp,
    WdMergerApp,
    as_simulation_app,
    register_adapter,
)
from repro.errors import (
    CollectionError,
    ConfigurationError,
    NotTrainedError,
    ReproError,
    ScenarioError,
)
from repro import scenarios
from repro.scenarios import ScenarioSpec, run_scenario

__version__ = "1.0.0"

__all__ = [
    "ARModel",
    "Analysis",
    "BreakPointFeature",
    "CadenceController",
    "CadencePolicy",
    "CollectionError",
    "ConfigurationError",
    "CurveFitting",
    "Curve_Fitting",
    "DelayTimeFeature",
    "EarlyStopMonitor",
    "InSituEngine",
    "IterParam",
    "LuleshApp",
    "MiniBatch",
    "MiniBatchTrainer",
    "NotTrainedError",
    "Region",
    "ReplayApp",
    "ReproError",
    "ScenarioError",
    "ScenarioSpec",
    "SharedCollector",
    "SimulationApp",
    "ThresholdDetector",
    "VariableTracker",
    "WdMergerApp",
    "as_simulation_app",
    "register_adapter",
    "run_scenario",
    "scenarios",
    "td_iter_param_init",
    "td_region_add_analysis",
    "td_region_begin",
    "td_region_end",
    "td_region_init",
    "__version__",
]
