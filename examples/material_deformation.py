"""Material deformation analysis on the LULESH mini-app (paper Case 1).

Extracts the material break-point radius for a range of velocity
thresholds with the in-situ auto-regression method and compares against
the full-simulation ground truth.  The workload is resolved *by name*
from the scenario registry: the spec carries the provider, the windows,
the ``all`` termination policy and the reference quantities, so this
example is just a parameterised :func:`repro.scenarios.run_scenario`
call — the CLI equivalent is::

    python -m repro run lulesh-sedov --param size=30

Run:  python examples/material_deformation.py [size]
"""

import _bootstrap  # noqa: F401  (makes src/ importable from a checkout)

import sys

from repro import scenarios

THRESHOLDS = (0.05, 0.1, 0.2)


def main():
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 30
    print(f"domain size {size}^3 — running scenario 'lulesh-sedov' ...")
    run = scenarios.run_scenario(
        "lulesh-sedov",
        config=scenarios.RunConfig(
            params={"size": size, "thresholds": THRESHOLDS}
        ),
    )
    metrics = run.metrics
    print(
        f"in-situ sweep: one run, {run.result.iterations} iterations "
        f"(reference run: {metrics['reference_iterations']}; "
        f"{metrics['iterations_saved_pct']:.0f}% saved)"
    )
    print()
    header = f"{'threshold':>10} {'truth':>6} {'extracted':>10} {'stopped at':>11}"
    print(header)
    print("-" * len(header))
    for threshold, analysis in zip(THRESHOLDS, run.analyses):
        radii = metrics["radii"][f"t{threshold:g}"]
        stop = run.result.stopped_at.get(analysis.name, run.result.iterations)
        print(
            f"{100 * threshold:>9.1f}% {radii['truth']:>6} "
            f"{radii['extracted']:>10} {stop:>11}"
        )
    print()
    verdict = "PASS" if run.ok else "FAIL"
    print(
        f"worst radius deviation: {run.error:g} elements "
        f"(tolerance {run.tolerance:g}) -> {verdict}"
    )
    if not run.ok:
        print(
            "(small domains under-extrapolate the lowest threshold — the "
            "collection window\n ends before its radius; the paper's "
            "Table II shows the same saturation shape)"
        )


if __name__ == "__main__":
    main()
