"""Material deformation analysis on the LULESH mini-app (paper Case 1).

Extracts the material break-point radius for a range of velocity
thresholds with the in-situ auto-regression method, then compares
against the full-simulation ground truth.  All thresholds ride ONE
instrumented simulation: they attach to a single
:class:`~repro.engine.InSituEngine` under the ``all`` termination
policy, the shared-collection layer samples the velocity window once
per iteration, and each threshold's analysis freezes at its own
early-stop point.

Run:  python examples/material_deformation.py [size]
"""

import sys

from repro.core.params import IterParam
from repro.engine import InSituEngine
from repro.lulesh import LuleshSimulation
from repro.lulesh.insitu import BreakPointAnalysis

THRESHOLDS = (0.002, 0.01, 0.05, 0.1, 0.2)


def ground_truth(size):
    """Full run recording every node — the post-analysis baseline."""
    sim = LuleshSimulation(
        size, maintain_field=False, record_locations=list(range(size + 1))
    )
    result = sim.run()
    return sim, result


def _provider(domain, loc):
    return domain.xd(loc)


# Batch protocol: sample the whole spatial window in one gather.
def _provider_batch(domain, locations):
    return domain.xd_batch(locations)


_provider.batch = _provider_batch


def extract_break_points(size, thresholds, total_iterations):
    """In-situ extraction of every threshold in one shared run."""
    sim = LuleshSimulation(size, maintain_field=False)
    engine = InSituEngine(sim, policy="all", name="material-deformation")
    analyses = {
        threshold: engine.add_analysis(
            BreakPointAnalysis(
                _provider,
                IterParam(1, 10, 1),
                IterParam(50, int(0.4 * total_iterations), 1),
                threshold=threshold,
                max_location=size,
                lag=10,
                order=3,
                terminate_when_trained=True,
                name=f"threshold_{threshold:g}",
            )
        )
        for threshold in thresholds
    }
    result = engine.run()
    return analyses, result


def main():
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 30
    print(f"domain size {size}^3 — running ground-truth simulation ...")
    truth_sim, truth_run = ground_truth(size)
    peaks = truth_sim.peak_velocity_profile()
    v0 = truth_sim.blast_velocity
    print(f"full run: {truth_run.iterations} iterations, blast velocity {v0:.2f}")
    analyses, result = extract_break_points(
        size, THRESHOLDS, truth_run.iterations
    )
    shared = analyses[THRESHOLDS[0]].collector.store
    assert all(a.collector.store is shared for a in analyses.values())
    print(
        f"in-situ sweep: one run, {result.iterations} iterations, "
        f"{len(THRESHOLDS)} thresholds sharing one collection window"
    )
    print()
    header = f"{'threshold':>10} {'truth':>6} {'extracted':>10} {'stopped at':>11}"
    print(header)
    print("-" * len(header))
    for threshold, analysis in analyses.items():
        cut = threshold * v0
        above = [i for i in range(1, size + 1) if peaks[i] >= cut]
        truth_radius = max(above) if above else 0
        stop = result.stopped_at.get(analysis.name, result.iterations)
        share = 100.0 * stop / truth_run.iterations
        print(
            f"{100 * threshold:>9.1f}% {truth_radius:>6} "
            f"{analysis.final_feature().radius:>10} {share:>10.1f}%"
        )
    print()
    print("low thresholds saturate at the domain edge; high thresholds")
    print("match the simulation exactly (paper Table II's shape).")


if __name__ == "__main__":
    main()
