"""Material deformation analysis on the LULESH mini-app (paper Case 1).

Extracts the material break-point radius for a range of velocity
thresholds with the in-situ auto-regression method, terminating the
simulation early once the model has converged and the feature is
confirmed, then compares against the full-simulation ground truth.

Run:  python examples/material_deformation.py [size]
"""

import sys

from repro.core.params import IterParam
from repro.core.region import Region
from repro.lulesh import LuleshSimulation
from repro.lulesh.insitu import BreakPointAnalysis


def ground_truth(size):
    """Full run recording every node — the post-analysis baseline."""
    sim = LuleshSimulation(
        size, maintain_field=False, record_locations=list(range(size + 1))
    )
    result = sim.run()
    return sim, result


def extract_break_point(size, threshold, total_iterations):
    """In-situ extraction with early termination."""
    sim = LuleshSimulation(size, maintain_field=False)
    region = Region("lulesh", sim.domain)
    analysis = BreakPointAnalysis(
        lambda domain, loc: domain.xd(loc),
        IterParam(1, 10, 1),
        IterParam(50, int(0.4 * total_iterations), 1),
        threshold=threshold,
        max_location=size,
        lag=10,
        order=3,
        terminate_when_trained=True,
    )
    region.add_analysis(analysis)
    result = sim.run(region)
    return analysis.final_feature(), result


def main():
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 30
    print(f"domain size {size}^3 — running ground-truth simulation ...")
    truth_sim, truth_run = ground_truth(size)
    peaks = truth_sim.peak_velocity_profile()
    v0 = truth_sim.blast_velocity
    print(f"full run: {truth_run.iterations} iterations, blast velocity {v0:.2f}")
    print()
    header = f"{'threshold':>10} {'truth':>6} {'extracted':>10} {'stopped at':>11}"
    print(header)
    print("-" * len(header))
    for threshold in (0.002, 0.01, 0.05, 0.1, 0.2):
        cut = threshold * v0
        above = [i for i in range(1, size + 1) if peaks[i] >= cut]
        truth_radius = max(above) if above else 0
        feature, run = extract_break_point(size, threshold, truth_run.iterations)
        share = 100.0 * run.iterations / truth_run.iterations
        print(
            f"{100 * threshold:>9.1f}% {truth_radius:>6} "
            f"{feature.radius:>10} {share:>10.1f}%"
        )
    print()
    print("low thresholds saturate at the domain edge; high thresholds")
    print("match the simulation exactly (paper Table II's shape).")


if __name__ == "__main__":
    main()
