"""Make ``import repro`` work when examples run from a plain checkout.

Each example starts with ``import _bootstrap`` (the script's own
directory is always importable), which inserts the repository's
``src/`` directory — the one place that path is computed for example
scripts, replacing the per-script ``PYTHONPATH=src`` requirement.
"""

import os
import sys

_SRC = os.path.abspath(
    os.path.join(os.path.dirname(os.path.abspath(__file__)), os.pardir, "src")
)
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
