"""White dwarf merger detonation delay-time extraction (paper Case 2).

Runs the wdmerger scenario from the registry, extracts the delay time
per binary configuration from the in-situ tracked detonation
inflection, and assembles a small delay-time distribution (DTD) — the
downstream science use the paper's Section V motivates.  The workload
is resolved by name; the CLI equivalent of one configuration is::

    python -m repro run wdmerger-detonation --param initial_separation=2.6

Run:  python examples/wd_merger_dtd.py
"""

import _bootstrap  # noqa: F401  (makes src/ importable from a checkout)

import numpy as np

from repro import scenarios
from repro.wdmerger import DIAGNOSTIC_NAMES, delay_time_features


def main():
    print("single merger, all four diagnostics (resolution 32):")
    sim = scenarios.build_sim("wdmerger-detonation", resolution=32, maintain_grid=True)
    sim.run()
    features = delay_time_features(sim.history.times, sim.history.all_series())
    print(f"  simulation detonation event at t = {sim.events.detonation_time}")
    for name in DIAGNOSTIC_NAMES:
        print(f"  {name:<18} delay time {features[name].delay_time:7.3f}")
    print()
    print("delay-time distribution over binary configurations (in situ,")
    print("early-terminated runs):")
    delays = []
    for a0 in (2.55, 2.60, 2.65, 2.70):
        run = scenarios.run_scenario(
            "wdmerger-detonation",
            config=scenarios.RunConfig(
                params={"resolution": 16, "initial_separation": a0}
            ),
        )
        delay = run.metrics.get("delay_time", float("nan"))
        delays.append(delay)
        print(
            f"  a0={a0:.2f}: delay {delay:7.2f}  "
            f"(event {run.metrics.get('event_time')}, "
            f"{run.metrics.get('run_saved_pct', 0.0):.0f}% of run saved)"
        )
    finite = [d for d in delays if np.isfinite(d)]
    print()
    print(f"DTD summary: {len(finite)} detonations, "
          f"median delay {np.median(finite):.1f} time units")


if __name__ == "__main__":
    main()
