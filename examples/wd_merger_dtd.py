"""White dwarf merger detonation delay-time extraction (paper Case 2).

Runs the wdmerger simulator, extracts the four diagnostic curves in
situ, derives a delay time per diagnostic from the tracked inflection
points, and assembles a small delay-time distribution (DTD) over a set
of binary configurations — the downstream science use the paper's
Section V motivates.

Run:  python examples/wd_merger_dtd.py
"""

import numpy as np

from repro.core.params import IterParam
from repro.engine import InSituEngine
from repro.wdmerger import (
    DIAGNOSTIC_NAMES,
    WdMergerSimulation,
    delay_time_features,
)
from repro.wdmerger.insitu import DetonationAnalysis


def delay_times_for(resolution=16, **binary_kwargs):
    """One merger's in-situ delay time (temperature diagnostic)."""
    sim = WdMergerSimulation(
        resolution, maintain_grid=False, **binary_kwargs
    )
    total = int(sim.end_time / sim.dt)
    engine = InSituEngine(sim, name="wdmerger")
    analysis = engine.add_analysis(
        DetonationAnalysis(
            IterParam(0, 0, 1),
            IterParam(1, total, 1),
            variable="temperature",
            dt=sim.dt,
            order=3,
            batch_size=4,
            learning_rate=0.03,
            min_updates=3,
            monitor_window=3,
            monitor_patience=1,
            terminate_when_trained=True,
        )
    )
    engine.run()
    feature = analysis.delay_feature
    saved = 100.0 * (1.0 - sim.time / sim.end_time)
    return feature, sim.events, saved


def main():
    print("single merger, all four diagnostics (resolution 32):")
    sim = WdMergerSimulation(32)
    sim.run()
    features = delay_time_features(sim.history.times, sim.history.all_series())
    print(f"  simulation detonation event at t = {sim.events.detonation_time}")
    for name in DIAGNOSTIC_NAMES:
        print(f"  {name:<18} delay time {features[name].delay_time:7.3f}")
    print()
    print("delay-time distribution over binary configurations (in situ,")
    print("early-terminated runs):")
    configurations = [
        {"initial_separation": a0} for a0 in (2.55, 2.60, 2.65, 2.70)
    ]
    delays = []
    for config in configurations:
        feature, events, saved = delay_times_for(**config)
        delay = feature.delay_time if feature else float("nan")
        delays.append(delay)
        print(
            f"  a0={config['initial_separation']:.2f}: "
            f"delay {delay:7.2f}  (event {events.detonation_time}, "
            f"{saved:.0f}% of run saved)"
        )
    finite = [d for d in delays if np.isfinite(d)]
    print()
    print(f"DTD summary: {len(finite)} detonations, "
          f"median delay {np.median(finite):.1f} time units")


if __name__ == "__main__":
    main()
