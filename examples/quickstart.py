"""Quickstart: in-situ curve fitting on a toy simulation in ~40 lines.

Runs a little travelling-wave "simulation", attaches a Curve_Fitting
analysis through the paper's td_* API, trains the auto-regressive model
while the loop runs, and prints the fit quality plus a short forecast.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    Curve_Fitting,
    td_iter_param_init,
    td_region_add_analysis,
    td_region_begin,
    td_region_end,
    td_region_init,
)


class ToySimulation:
    """A Gaussian pulse drifting to the right: V(l, t) = exp(-(l - ct)^2/w)."""

    def __init__(self, n_locations=24, speed=0.06, width=10.0):
        self.n_locations = n_locations
        self.speed = speed
        self.width = width
        self.t = 0

    def step(self):
        self.t += 1

    def value(self, loc):
        x = loc - self.speed * self.t
        return float(np.exp(-(x**2) / self.width))


def td_var_provider(domain, loc):
    """The paper's provider: read the diagnostic variable at a location."""
    return domain.value(loc)


def main():
    sim = ToySimulation()
    region = td_region_init("quickstart", sim)

    locations = td_iter_param_init(0, 14, 1)     # spatial window
    iterations = td_iter_param_init(1, 150, 1)   # temporal window
    analysis = td_region_add_analysis(
        region, td_var_provider, locations, Curve_Fitting, iterations,
        order=3, lag=2, batch_size=8,
    )

    # The instrumented main loop — identical shape to the paper's
    # LULESH listing: begin, main computation, end.
    for _ in range(150):
        td_region_begin(region)
        sim.step()
        td_region_end(region)

    summary = analysis.summary()
    print(f"samples collected : {summary.samples_collected}")
    print(f"gradient updates  : {summary.updates}")
    print(f"model converged   : {summary.converged}")
    print(f"fit error         : {analysis.fit_error():.2f}%")

    forecast = analysis.forecast(location=7, steps=5)
    print(f"5-step forecast at location 7: {np.round(forecast, 4).tolist()}")


if __name__ == "__main__":
    main()
