"""Quickstart: drive a registered scenario through the CLI path.

Every workload in this repo is a *scenario*: a declarative spec binding
a simulation factory, providers, analysis windows, termination policy
and ground truth, resolved by name from the registry.  The same calls
shown here back the command line::

    python -m repro list
    python -m repro run heat-diffusion --quick --ranks 2

Run:  python examples/quickstart.py
"""

import _bootstrap  # noqa: F401  (makes src/ importable from a checkout)

from repro import scenarios
from repro.cli import main as repro_cli

# 1. The CLI entry point is plain Python — `list` shows the registry.
print("$ python -m repro list --names")
repro_cli(["list", "--names"])

# 2. Run one scenario end to end: build, run in situ, validate the
#    fitted AR predictions against the closed-form ground truth.
print()
print("$ python -m repro run heat-diffusion --quick")
status = repro_cli(["run", "heat-diffusion", "--quick"])
assert status == 0, "scenario validation failed"

# 3. The same thing programmatically, with the full result in hand.
run = scenarios.run_scenario(
    "heat-diffusion", config=scenarios.RunConfig(quick=True)
)
print()
print(f"programmatic: error {run.error:.4g}% vs tolerance {run.tolerance:g}%")
print(f"analyses: {[a.name for a in run.analyses]}")
print(f"stopped at: {run.result.stopped_at}")

# 4. Distributed runs shard the same spec over ranks and cross-check
#    against serial — bit-identical fits or the run fails.
run = scenarios.run_scenario(
    "heat-diffusion", config=scenarios.RunConfig(quick=True, n_ranks=2)
)
print(
    f"2 ranks: max serial/distributed delta "
    f"{run.crosscheck['max_coefficient_delta']:.1e} -> ok={run.ok}"
)
