"""Distributed in-situ extraction on the LULESH Sedov blast.

Runs the break-point threshold sweep of the material-deformation case
through the rank-parallel :class:`~repro.engine.DistributedEngine` and
shows the three things the distributed runtime guarantees:

1. **Determinism** — fit coefficients, stop iterations and extracted
   break radii at every rank count equal the serial
   :class:`~repro.engine.InSituEngine` bit for bit: each rank gathers
   only its shard of the velocity window, and the reduced rows are
   exactly the serial provider sweeps.
2. **Mergeable collection** — the rank-local shard stores reassemble
   into the full series (`SeriesStore.merge_shards`), and the per-rank
   `RunningStats` partials Chan-merge into the global aggregate.
3. **Accounted communication** — the per-iteration row reduction,
   collective stop agreement and final statistics reduction all charge
   Hockney-model time to the `SimComm` ledger, which is how modeled
   scaling numbers stay tied to measured runs.

The workload itself is resolved by name from the scenario registry —
the spec's factories build the simulation and the threshold sweep, so
this example only owns the distributed-runtime walkthrough.

Run:  python examples/distributed_sedov.py [size] [ranks]
"""

import _bootstrap  # noqa: F401  (makes src/ importable from a checkout)

import sys

import numpy as np

from repro import scenarios
from repro.engine import DistributedEngine, InSituEngine

THRESHOLDS = (0.002, 0.02, 0.2)


def main():
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 30
    n_ranks = int(sys.argv[2]) if len(sys.argv) > 2 else 4

    spec = scenarios.get("lulesh-sedov")
    params = spec.params(
        overrides={
            "size": size,
            "thresholds": THRESHOLDS,
            "spatial_window": (1, 10),
            "train_begin": 50,
        }
    )
    print(f"domain size {size}^3, {n_ranks} ranks (scenario 'lulesh-sedov')")

    serial_engine = InSituEngine(spec.app_factory(**params), policy="all")
    serial = [
        serial_engine.add_analysis(a)
        for a in spec.analysis_factory(**params)
    ]
    serial_result = serial_engine.run()

    engine = DistributedEngine(
        spec.app_factory(**params),
        n_ranks=n_ranks,
        policy="all",
        name="distributed-sedov",
    )
    dist = [engine.add_analysis(a) for a in spec.analysis_factory(**params)]
    result = engine.run()

    print()
    header = (
        f"{'threshold':>10} {'radius':>7} {'stopped at':>11} "
        f"{'coef delta':>12}"
    )
    print(header)
    print("-" * len(header))
    for serial_analysis, dist_analysis in zip(serial, dist):
        delta = float(
            np.max(
                np.abs(
                    serial_analysis.model.coefficients
                    - dist_analysis.model.coefficients
                )
            )
        )
        assert delta <= 1e-12, f"distributed run diverged by {delta:.3e}"
        name = dist_analysis.name
        assert result.stopped_at[name] == serial_result.stopped_at[name]
        print(
            f"{name.split('-t')[-1]:>10} "
            f"{dist_analysis.final_feature().radius:>7} "
            f"{result.stopped_at[name]:>11} {delta:>12.1e}"
        )

    # Mergeable collection: rank shards reassemble into the full store.
    executor = engine.executor
    merged = executor.merged_store(0)
    full = dist[0].collector.store
    assert np.array_equal(merged.matrix(), full.matrix())
    stats = result.collection_stats[0]
    widths = [s.locations.shape[0] for s in executor.shard_stores(0)]

    print()
    print(
        f"shards per rank: {widths} locations "
        f"(merge_shards round-trips the full {full.matrix().shape} store)"
    )
    print(
        f"Chan-merged collection stats: {stats.count} samples, "
        f"mean {stats.mean[0]:.4f} (matrix mean {full.matrix().mean():.4f})"
    )
    print(
        f"communication ledger: {result.comm_seconds * 1e3:.3f} ms across "
        f"{engine.comm.allreduce_count} allreduces, "
        f"{engine.comm.broadcast_count} broadcasts, "
        f"{engine.comm.gather_count} gathers"
    )
    print(
        "per-rank sampling seconds: "
        + ", ".join(f"{s:.4f}" for s in result.rank_sample_seconds)
    )
    print()
    print("distributed run is bit-identical to the serial engine; the")
    print("ledger carries the modelled cost of keeping it collective.")


if __name__ == "__main__":
    main()
