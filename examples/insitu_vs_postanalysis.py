"""In-situ extraction vs the traditional post-analysis workflow.

Quantifies the trade the paper motivates: post-analysis keeps the full
dataset (exact features, heavy modelled I/O bill); the in-situ method
streams mini-batches through an AR model (approximate features, no
snapshot traffic).  Prints both features and the modelled I/O cost the
in-situ method avoids.

Run:  python examples/insitu_vs_postanalysis.py
"""

import _bootstrap  # noqa: F401  (makes src/ importable from a checkout)

from repro.analysis import PostHocAnalyzer
from repro.core.params import IterParam
from repro.engine import InSituEngine
from repro.lulesh import LuleshSimulation
from repro.lulesh.insitu import BreakPointAnalysis


def main():
    size = 30
    threshold = 0.05

    # --- post-analysis baseline: record everything, analyse offline.
    sim = LuleshSimulation(
        size, maintain_field=False, record_locations=list(range(size + 1))
    )
    result = sim.run()
    analyzer = PostHocAnalyzer()
    feature = analyzer.break_point(
        result.velocity_history,
        list(range(size + 1)),
        threshold=threshold,
        reference_value=sim.blast_velocity,
        max_location=size,
    )
    # Each iteration would write the full 3-D state (6 fields) to disk.
    cost = analyzer.io_cost(
        n_snapshots=result.iterations, n_elements=size**3, n_fields=6
    )
    print("post-analysis baseline:")
    print(f"  break-point radius       : {feature.radius}")
    print(f"  snapshots written        : {cost.snapshots}")
    print(f"  data volume              : {cost.bytes_written / 1e9:.2f} GB")
    print(f"  modelled write+read time : {cost.total_seconds:.2f} s")
    print()

    # --- in-situ method: no snapshots, early termination.
    sim2 = LuleshSimulation(size, maintain_field=False)
    engine = InSituEngine(sim2, name="lulesh")
    analysis = engine.add_analysis(
        BreakPointAnalysis(
            lambda domain, loc: domain.xd(loc),
            IterParam(1, 10, 1),
            IterParam(50, int(0.4 * result.iterations), 1),
            threshold=threshold,
            max_location=size,
            lag=10,
            order=3,
            terminate_when_trained=True,
        )
    )
    run = engine.run()
    print("in-situ auto-regression:")
    print(f"  break-point radius       : {analysis.final_feature().radius}")
    print(f"  iterations executed      : {run.iterations} "
          f"({100 * run.iterations / result.iterations:.0f}% of full run)")
    print(f"  training samples used    : {analysis.collector.samples_emitted}")
    print(f"  snapshot I/O             : none")


if __name__ == "__main__":
    main()
