"""Table VI — detonation delay-time: extraction vs ground truth."""

from benchmarks.conftest import emit
from repro.experiments import table6, wdmerger_reference


def test_table6(benchmark):
    table = benchmark.pedantic(table6, rounds=1, iterations=1)
    emit(table)
    truth = table.column("From Sim.")
    extracted = table.column("Feat. Extraction")
    detonation = wdmerger_reference(32).detonation_time
    for t, e in zip(truth, extracted):
        # Every diagnostic's delay-time lands within the paper's error
        # band (-6.56% .. +4.75%, widened slightly).
        assert abs(e - t) / t < 0.08
        # And both sit near the simulation's actual detonation event.
        assert abs(t - detonation) < 0.15 * detonation
