"""Table IV — early termination by threshold and domain size."""

from benchmarks.conftest import emit
from repro.experiments import table4


def test_table4(benchmark, full_grid):
    sizes = (30, 60, 90) if full_grid else (30, 60)
    thresholds = (
        (0.001, 0.002, 0.005, 0.0075, 0.01, 0.02, 0.05, 0.1, 0.2)
        if full_grid
        else (0.002, 0.02, 0.05, 0.2)
    )
    table = benchmark.pedantic(
        table4,
        kwargs={"sizes": sizes, "thresholds": thresholds},
        rounds=1,
        iterations=1,
    )
    emit(table)
    iter_share = table.column("% of iterations")
    time_share = table.column("% of total time")
    # Every run terminates early — at most ~half of the full run (the
    # paper's 40%-of-iterations ceiling plus margin).
    assert max(iter_share) <= 50.0
    # Time share tracks iteration share (paper: 40% iters ~ 41% time);
    # our substrate's per-iteration cost is less uniform, so the band
    # is wider, but every early stop still saves ~a third of the run.
    for it_pct, t_pct in zip(iter_share, time_share):
        assert abs(it_pct - t_pct) < 45.0
        assert t_pct < 85.0
    # On average across thresholds, early termination saves at least a
    # third of the run (paper: ~60%).
    assert sum(time_share) / len(time_share) < 66.0
    # On the larger domain, high thresholds confirm earlier than low
    # ones (the paper's 20% vs 40% split).
    rows_by_size = {}
    for row in table.rows:
        rows_by_size.setdefault(row[0], []).append(row)
    big = rows_by_size[f"{sizes[-1]}^3"]
    low_thr = big[0]
    high_thr = big[-1]
    assert high_thr[4] <= low_thr[4]
