"""Data-plane performance benchmark: scalar seed path vs vectorized path.

Times a collection-heavy in-situ run — wide spatial window, long
temporal window, four analyses sharing one data window — through two
implementations of the data plane:

``scalar``
    A faithful reference copy of the seed implementation: the provider
    is called once per location in a Python loop, the series store is a
    list of row arrays (``matrix()`` re-stacks history), temporal
    emission pushes one sample per location, and the AR normalisation
    statistics run the per-row Welford recurrence.

``vector``
    The current implementation: one batch-provider gather per matching
    iteration, preallocated zero-copy :class:`SeriesStore`, block
    temporal emission through ``push_block``, and Chan's batched merge
    in :class:`RunningStats`.

Both paths train the same four AR models on the same replayed history;
the benchmark asserts their fitted coefficients agree within 1e-9, so
the reported speedup is for *identical* results.

``--kernels`` adds a backend-comparison leg: when it resolves to
``numba`` (or ``auto`` finds the toolchain), the vectorized path runs a
third time on the compiled kernels (:mod:`repro.core.kernels`) and the
row records compiled seconds, the compiled-vs-interpreted speedup and
the coefficient delta between the two backends (contract: <= 1e-12).
An untimed warmup pass — which also absorbs JIT compilation — runs
before any timed region; its cost lands in ``warmup_seconds``.

Run directly::

    python benchmarks/perf_dataplane.py [--quick] \
        [--kernels auto|numpy|numba] [--output BENCH_dataplane.json]

``--quick`` trims the grid for CI smoke runs.  ``--min-speedup`` gates
the wide-window scenario: on the numpy backend it bounds the
scalar-vs-vector speedup; on numba it bounds the
compiled-vs-interpreted speedup.  Not collected by pytest (the module
is not named ``test_*``) — this is a timing script, not a correctness
test.
"""

from __future__ import annotations

import _bootstrap  # noqa: F401  (makes src/ importable from a checkout)

import argparse
import json
import os
import time
from typing import List, Optional

import numpy as np

from repro.core import kernels as kernel_registry
from repro.core.ar_model import ARModel, RunningStats
from repro.core.collector import DataCollector, SeriesStore
from repro.core.kernels import KERNEL_NUMBA, KERNEL_NUMPY, resolve_kernels
from repro.core.minibatch import MiniBatchTrainer
from repro.core.params import IterParam
from repro.errors import CollectionError


# ----------------------------------------------------------------------
# Scalar reference: the seed data plane, frozen for comparison
# ----------------------------------------------------------------------


class ScalarRunningStats(RunningStats):
    """Seed per-row Welford recurrence (pre-Chan reference)."""

    def update(self, rows: np.ndarray) -> None:
        rows = np.atleast_2d(np.asarray(rows, dtype=np.float64))
        for row in rows:
            self.count += 1
            delta = row - self._mean
            self._mean += delta / self.count
            self._m2 += delta * (row - self._mean)
        self._std_cache = None


class ScalarARModel(ARModel):
    """Seed training path, frozen pre-kernel.

    The live :meth:`ARModel.partial_fit` now runs as one fused call on
    the active kernel backend; the reference copy below preserves the
    seed sequence — a stats fold through ``RunningStats.update`` (the
    per-row Welford loop of :class:`ScalarRunningStats`) followed by
    interpreted GD epochs — so the scalar leg keeps measuring the
    original implementation.
    """

    def partial_fit(self, x: np.ndarray, y: np.ndarray) -> float:
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        y = np.ravel(np.asarray(y, dtype=np.float64))
        self._x_stats.update(x)
        self._y_stats.update(y.reshape(-1, 1))
        xs = (x - self._x_stats.mean) / self._x_stats.std
        ys = (y - self._y_stats.mean[0]) / self._y_stats.std[0]
        pre_residual = xs @ self._w + self._b - ys
        pre_mse = float(np.mean(pre_residual**2))
        k = xs.shape[0]
        for _ in range(self.epochs_per_batch):
            residual = xs @ self._w + self._b - ys
            grad_w = 2.0 * (xs.T @ residual) / k + 2.0 * self.l2 * (
                self._w - self._prior
            )
            grad_b = 2.0 * float(np.mean(residual))
            norm = float(np.sqrt(np.dot(grad_w, grad_w) + grad_b * grad_b))
            if norm > self.clip:
                grad_w = grad_w * (self.clip / norm)
                grad_b = grad_b * (self.clip / norm)
            self._w = self._w - self.learning_rate * grad_w
            self._b -= self.learning_rate * grad_b
            self._project_stationary()
        self._updates += 1
        return pre_mse


class ScalarSeriesStore:
    """Seed store: list of rows, vstack matrix, linear row lookup."""

    def __init__(self, locations: np.ndarray) -> None:
        self.locations = np.asarray(locations, dtype=np.int64)
        self._iterations: List[int] = []
        self._rows: List[np.ndarray] = []

    def __len__(self) -> int:
        return len(self._iterations)

    @property
    def last_iteration(self) -> Optional[int]:
        return self._iterations[-1] if self._iterations else None

    def add_row(self, iteration: int, values: np.ndarray) -> None:
        if self._iterations and iteration <= self._iterations[-1]:
            raise CollectionError("out-of-order row")
        self._iterations.append(int(iteration))
        self._rows.append(np.array(values, dtype=np.float64))

    def matrix(self) -> np.ndarray:
        if not self._rows:
            return np.empty((0, len(self.locations)))
        return np.vstack(self._rows)

    def row_at(self, iteration: int) -> Optional[np.ndarray]:
        try:
            idx = self._iterations.index(int(iteration))
        except ValueError:
            return None
        return self._rows[idx]

    def row(self, index: int) -> np.ndarray:
        return self._rows[index]


class ScalarCollector:
    """Seed collector: per-location provider calls, per-sample pushes."""

    def __init__(
        self,
        provider,
        spatial: IterParam,
        temporal: IterParam,
        trainer: MiniBatchTrainer,
        *,
        lag: int = 1,
        axis: str = "space",
        store: Optional[ScalarSeriesStore] = None,
    ) -> None:
        self.provider = provider
        self.spatial = spatial
        self.temporal = temporal
        self.trainer = trainer
        self.lag = lag
        self.axis = axis
        self.order = trainer.batch.n_features
        self.store = store or ScalarSeriesStore(spatial.indices())
        self._rows_ingested = 0

    def observe(self, domain: object, iteration: int) -> None:
        if not self.temporal.matches(iteration):
            return
        if (
            self.store.last_iteration == iteration
            and self._rows_ingested < len(self.store)
        ):
            row = self.store.row(-1)
        else:
            row = np.array(
                [
                    float(self.provider(domain, int(loc)))
                    for loc in self.store.locations
                ],
                dtype=np.float64,
            )
            self.store.add_row(iteration, row)
        self._rows_ingested += 1
        if self.axis == "space":
            self._emit_spatial(iteration, row)
        else:
            self._emit_temporal()

    def _emit_spatial(self, iteration: int, row: np.ndarray) -> None:
        lagged = self.store.row_at(iteration - self.lag)
        if lagged is None:
            return
        first = self.order - 1
        n_targets = row.shape[0] - first
        if n_targets <= 0:
            return
        windows = np.lib.stride_tricks.sliding_window_view(lagged, self.order)
        features = windows[:n_targets, ::-1]
        self.trainer.push_block(features, row[first:])

    def _emit_temporal(self) -> None:
        lag_rows = self.lag // self.temporal.step
        n = len(self.store)
        anchor = n - 1 - lag_rows
        if anchor - (self.order - 1) < 0:
            return
        window_rows = [
            self.store.row(i)
            for i in range(anchor - self.order + 1, anchor + 1)
        ]
        target_row = self.store.row(n - 1)
        for col in range(target_row.shape[0]):
            features = np.array([row[col] for row in reversed(window_rows)])
            self.trainer.push(features, target_row[col])


# ----------------------------------------------------------------------
# Scenario drivers
# ----------------------------------------------------------------------


class _RowDomain:
    __slots__ = ("row",)

    def value(self, location: int) -> float:
        return float(self.row[location])


def _scalar_row_provider(domain, location):
    return domain.value(location)


def _vector_row_provider(domain, location):
    return domain.value(location)


def _vector_row_batch(domain, locations):
    return domain.row[locations]


_vector_row_provider.batch = _vector_row_batch


def _history(n_iterations: int, n_locations: int, seed: int = 7) -> np.ndarray:
    """A travelling wave over noise: smooth, well-scaled, nontrivial."""
    rng = np.random.default_rng(seed)
    t = np.arange(1, n_iterations + 1)[:, None].astype(np.float64)
    x = np.arange(n_locations)[None, :].astype(np.float64)
    wave = 5.0 * np.exp(-0.5 * ((x - 0.35 * t) / (0.06 * n_locations)) ** 2)
    drift = 0.01 * t + 0.002 * x
    noise = 0.02 * rng.standard_normal((n_iterations, n_locations))
    return wave + drift + noise


def _models(n_analyses: int, order: int, *, scalar_stats: bool):
    models = []
    for i in range(n_analyses):
        cls = ScalarARModel if scalar_stats else ARModel
        model = cls(
            order,
            lag=1,
            learning_rate=0.05,
            epochs_per_batch=4,
            seed=100 + i,
        )
        if scalar_stats:
            model._x_stats = ScalarRunningStats(order)
            model._y_stats = ScalarRunningStats(1)
        models.append(model)
    return models


def _run_scalar(history, spatial, temporal, *, axis, order, batch_size,
                n_analyses):
    models = _models(n_analyses, order, scalar_stats=True)
    shared = ScalarSeriesStore(spatial.indices())
    collectors = [
        ScalarCollector(
            _scalar_row_provider,
            spatial,
            temporal,
            MiniBatchTrainer(model, batch_size, order),
            axis=axis,
            store=shared,
        )
        for model in models
    ]
    domain = _RowDomain()
    start = time.perf_counter()
    for iteration in range(1, history.shape[0] + 1):
        domain.row = history[iteration - 1]
        for collector in collectors:
            collector.observe(domain, iteration)
    for collector in collectors:
        collector.trainer.finalize()
    return time.perf_counter() - start, models


def _run_vector(history, spatial, temporal, *, axis, order, batch_size,
                n_analyses):
    models = _models(n_analyses, order, scalar_stats=False)
    shared = SeriesStore(spatial.indices(), capacity=temporal.count)
    collectors = [
        DataCollector(
            _vector_row_provider,
            spatial,
            temporal,
            MiniBatchTrainer(model, batch_size, order),
            axis=axis,
            store=shared,
        )
        for model in models
    ]
    domain = _RowDomain()
    start = time.perf_counter()
    for iteration in range(1, history.shape[0] + 1):
        domain.row = history[iteration - 1]
        for collector in collectors:
            collector.observe(domain, iteration)
    for collector in collectors:
        collector.trainer.finalize()
    return time.perf_counter() - start, models


def _model_delta(models_a, models_b) -> float:
    delta = 0.0
    for a, b in zip(models_a, models_b):
        delta = max(
            delta,
            float(np.max(np.abs(a.coefficients - b.coefficients))),
            abs(a.intercept - b.intercept),
        )
    return delta


def warmup(kernels: str) -> float:
    """One untimed pass over a tiny grid before any timed region.

    Warms allocator pools, import caches and — when ``kernels`` is the
    compiled backend — triggers the one-time JIT compilation, so the
    timed runs below measure steady-state throughput only.  Returns the
    wall seconds the warmup itself cost (recorded in the JSON payload,
    never counted against a timed leg).
    """
    start = time.perf_counter()
    kernel_registry.get_backend(kernels)  # JIT warmup for compiled backends
    history = _history(40, 32, seed=11)
    spatial = IterParam(0, 31, 1)
    temporal = IterParam(1, 40, 1)
    for axis in ("space", "time"):
        kwargs = dict(axis=axis, order=3, batch_size=64, n_analyses=1)
        _run_scalar(history, spatial, temporal, **kwargs)
        with kernel_registry.activated(KERNEL_NUMPY):
            _run_vector(history, spatial, temporal, **kwargs)
        if kernels == KERNEL_NUMBA:
            with kernel_registry.activated(KERNEL_NUMBA):
                _run_vector(history, spatial, temporal, **kwargs)
    return time.perf_counter() - start


def run_scenario(name, *, n_locations, n_iterations, axis, order=3,
                 batch_size=256, n_analyses=4, kernels=KERNEL_NUMPY):
    history = _history(n_iterations, n_locations)
    spatial = IterParam(0, n_locations - 1, 1)
    temporal = IterParam(1, n_iterations, 1)
    kwargs = dict(
        axis=axis,
        order=order,
        batch_size=batch_size,
        n_analyses=n_analyses,
    )
    scalar_seconds, scalar_models = _run_scalar(
        history, spatial, temporal, **kwargs
    )
    # The interpreted leg always runs on the pure-NumPy kernels so the
    # compiled comparison below has a stable baseline.
    with kernel_registry.activated(KERNEL_NUMPY):
        vector_seconds, vector_models = _run_vector(
            history, spatial, temporal, **kwargs
        )
    max_delta = _model_delta(scalar_models, vector_models)
    if max_delta > 1e-9:
        raise AssertionError(
            f"{name}: scalar/vector fits diverged (max delta {max_delta:.3e})"
        )
    row = {
        "scenario": name,
        "axis": axis,
        "n_locations": n_locations,
        "n_iterations": n_iterations,
        "n_analyses": n_analyses,
        "order": order,
        "batch_size": batch_size,
        "kernel_backend": kernels,
        "scalar_seconds": round(scalar_seconds, 4),
        "vector_seconds": round(vector_seconds, 4),
        "speedup": round(scalar_seconds / vector_seconds, 2),
        "max_coefficient_delta": max_delta,
        "compiled_seconds": None,
        "compiled_speedup": None,
        "interpreted_vs_compiled_delta": None,
    }
    if kernels == KERNEL_NUMBA:
        with kernel_registry.activated(KERNEL_NUMBA):
            compiled_seconds, compiled_models = _run_vector(
                history, spatial, temporal, **kwargs
            )
        compiled_delta = _model_delta(vector_models, compiled_models)
        if compiled_delta > 1e-12:
            raise AssertionError(
                f"{name}: interpreted/compiled fits diverged "
                f"(max delta {compiled_delta:.3e}, contract 1e-12)"
            )
        row["compiled_seconds"] = round(compiled_seconds, 4)
        row["compiled_speedup"] = round(vector_seconds / compiled_seconds, 2)
        row["interpreted_vs_compiled_delta"] = compiled_delta
    return row


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="trimmed grid for CI smoke runs",
    )
    parser.add_argument(
        "--output",
        default="BENCH_dataplane.json",
        help="where to write the JSON results",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=0.0,
        help="fail unless the wide-window scenario beats this speedup "
        "(scalar-vs-vector on numpy, compiled-vs-interpreted on numba)",
    )
    parser.add_argument(
        "--kernels",
        default="numpy",
        help="hot-loop backend: auto / numpy / numba (plus aliases); "
        "numba adds a compiled comparison leg per scenario",
    )
    args = parser.parse_args(argv)
    kernels = resolve_kernels(args.kernels)

    if args.quick:
        grid = [
            dict(name="wide_spatial", n_locations=128, n_iterations=200,
                 axis="space"),
            dict(name="temporal_block", n_locations=64, n_iterations=300,
                 axis="time"),
        ]
    else:
        grid = [
            dict(name="wide_spatial", n_locations=512, n_iterations=600,
                 axis="space"),
            dict(name="temporal_block", n_locations=256, n_iterations=800,
                 axis="time"),
        ]

    warmup_seconds = warmup(kernels)
    results = [
        run_scenario(spec.pop("name"), kernels=kernels, **spec)
        for spec in grid
    ]

    header = (
        f"{'scenario':<16}{'axis':<7}{'locs':>6}{'iters':>7}"
        f"{'scalar s':>10}{'vector s':>10}{'speedup':>9}"
    )
    if kernels == KERNEL_NUMBA:
        header += f"{'jit s':>9}{'jit x':>7}"
    print(header)
    print("-" * len(header))
    for r in results:
        line = (
            f"{r['scenario']:<16}{r['axis']:<7}{r['n_locations']:>6}"
            f"{r['n_iterations']:>7}{r['scalar_seconds']:>10.3f}"
            f"{r['vector_seconds']:>10.3f}{r['speedup']:>8.1f}x"
        )
        if r["compiled_seconds"] is not None:
            line += (
                f"{r['compiled_seconds']:>9.3f}"
                f"{r['compiled_speedup']:>6.1f}x"
            )
        print(line)

    cpu_count = os.cpu_count() or 1
    payload = {
        "quick": args.quick,
        "kernel_backend": kernels,
        "warmup_seconds": round(warmup_seconds, 4),
        "cpu_count": cpu_count,
        # Timing-contention flag, following the distributed bench
        # convention: on a starved box the speedups are noise.
        "cpu_limited": cpu_count < 2,
        "scenarios": results,
    }
    with open(args.output, "w") as fh:
        json.dump(payload, fh, indent=2)
    print(f"\nwrote {args.output}")

    wide = results[0]
    if kernels == KERNEL_NUMBA:
        gate, label = wide["compiled_speedup"], "compiled-vs-interpreted"
    else:
        gate, label = wide["speedup"], "scalar-vs-vector"
    if args.min_speedup and gate < args.min_speedup:
        print(
            f"FAIL: wide-window {label} speedup {gate}x is below the "
            f"required {args.min_speedup}x"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
