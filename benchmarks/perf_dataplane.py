"""Data-plane performance benchmark: scalar seed path vs vectorized path.

Times a collection-heavy in-situ run — wide spatial window, long
temporal window, four analyses sharing one data window — through two
implementations of the data plane:

``scalar``
    A faithful reference copy of the seed implementation: the provider
    is called once per location in a Python loop, the series store is a
    list of row arrays (``matrix()`` re-stacks history), temporal
    emission pushes one sample per location, and the AR normalisation
    statistics run the per-row Welford recurrence.

``vector``
    The current implementation: one batch-provider gather per matching
    iteration, preallocated zero-copy :class:`SeriesStore`, block
    temporal emission through ``push_block``, and Chan's batched merge
    in :class:`RunningStats`.

Both paths train the same four AR models on the same replayed history;
the benchmark asserts their fitted coefficients agree within 1e-9, so
the reported speedup is for *identical* results.  Run directly::

    python benchmarks/perf_dataplane.py [--quick] \
        [--output BENCH_dataplane.json]

``--quick`` trims the grid for CI smoke runs.  Not collected by
pytest (the module is not named ``test_*``) — this is a timing script,
not a correctness test.
"""

from __future__ import annotations

import _bootstrap  # noqa: F401  (makes src/ importable from a checkout)

import argparse
import json
import time
from typing import List, Optional

import numpy as np

from repro.core.ar_model import ARModel, RunningStats
from repro.core.collector import DataCollector, SeriesStore
from repro.core.minibatch import MiniBatchTrainer
from repro.core.params import IterParam
from repro.errors import CollectionError


# ----------------------------------------------------------------------
# Scalar reference: the seed data plane, frozen for comparison
# ----------------------------------------------------------------------


class ScalarRunningStats(RunningStats):
    """Seed per-row Welford recurrence (pre-Chan reference)."""

    def update(self, rows: np.ndarray) -> None:
        rows = np.atleast_2d(np.asarray(rows, dtype=np.float64))
        for row in rows:
            self.count += 1
            delta = row - self._mean
            self._mean += delta / self.count
            self._m2 += delta * (row - self._mean)
        self._std_cache = None


class ScalarSeriesStore:
    """Seed store: list of rows, vstack matrix, linear row lookup."""

    def __init__(self, locations: np.ndarray) -> None:
        self.locations = np.asarray(locations, dtype=np.int64)
        self._iterations: List[int] = []
        self._rows: List[np.ndarray] = []

    def __len__(self) -> int:
        return len(self._iterations)

    @property
    def last_iteration(self) -> Optional[int]:
        return self._iterations[-1] if self._iterations else None

    def add_row(self, iteration: int, values: np.ndarray) -> None:
        if self._iterations and iteration <= self._iterations[-1]:
            raise CollectionError("out-of-order row")
        self._iterations.append(int(iteration))
        self._rows.append(np.array(values, dtype=np.float64))

    def matrix(self) -> np.ndarray:
        if not self._rows:
            return np.empty((0, len(self.locations)))
        return np.vstack(self._rows)

    def row_at(self, iteration: int) -> Optional[np.ndarray]:
        try:
            idx = self._iterations.index(int(iteration))
        except ValueError:
            return None
        return self._rows[idx]

    def row(self, index: int) -> np.ndarray:
        return self._rows[index]


class ScalarCollector:
    """Seed collector: per-location provider calls, per-sample pushes."""

    def __init__(
        self,
        provider,
        spatial: IterParam,
        temporal: IterParam,
        trainer: MiniBatchTrainer,
        *,
        lag: int = 1,
        axis: str = "space",
        store: Optional[ScalarSeriesStore] = None,
    ) -> None:
        self.provider = provider
        self.spatial = spatial
        self.temporal = temporal
        self.trainer = trainer
        self.lag = lag
        self.axis = axis
        self.order = trainer.batch.n_features
        self.store = store or ScalarSeriesStore(spatial.indices())
        self._rows_ingested = 0

    def observe(self, domain: object, iteration: int) -> None:
        if not self.temporal.matches(iteration):
            return
        if (
            self.store.last_iteration == iteration
            and self._rows_ingested < len(self.store)
        ):
            row = self.store.row(-1)
        else:
            row = np.array(
                [
                    float(self.provider(domain, int(loc)))
                    for loc in self.store.locations
                ],
                dtype=np.float64,
            )
            self.store.add_row(iteration, row)
        self._rows_ingested += 1
        if self.axis == "space":
            self._emit_spatial(iteration, row)
        else:
            self._emit_temporal()

    def _emit_spatial(self, iteration: int, row: np.ndarray) -> None:
        lagged = self.store.row_at(iteration - self.lag)
        if lagged is None:
            return
        first = self.order - 1
        n_targets = row.shape[0] - first
        if n_targets <= 0:
            return
        windows = np.lib.stride_tricks.sliding_window_view(lagged, self.order)
        features = windows[:n_targets, ::-1]
        self.trainer.push_block(features, row[first:])

    def _emit_temporal(self) -> None:
        lag_rows = self.lag // self.temporal.step
        n = len(self.store)
        anchor = n - 1 - lag_rows
        if anchor - (self.order - 1) < 0:
            return
        window_rows = [
            self.store.row(i)
            for i in range(anchor - self.order + 1, anchor + 1)
        ]
        target_row = self.store.row(n - 1)
        for col in range(target_row.shape[0]):
            features = np.array([row[col] for row in reversed(window_rows)])
            self.trainer.push(features, target_row[col])


# ----------------------------------------------------------------------
# Scenario drivers
# ----------------------------------------------------------------------


class _RowDomain:
    __slots__ = ("row",)

    def value(self, location: int) -> float:
        return float(self.row[location])


def _scalar_row_provider(domain, location):
    return domain.value(location)


def _vector_row_provider(domain, location):
    return domain.value(location)


def _vector_row_batch(domain, locations):
    return domain.row[locations]


_vector_row_provider.batch = _vector_row_batch


def _history(n_iterations: int, n_locations: int, seed: int = 7) -> np.ndarray:
    """A travelling wave over noise: smooth, well-scaled, nontrivial."""
    rng = np.random.default_rng(seed)
    t = np.arange(1, n_iterations + 1)[:, None].astype(np.float64)
    x = np.arange(n_locations)[None, :].astype(np.float64)
    wave = 5.0 * np.exp(-0.5 * ((x - 0.35 * t) / (0.06 * n_locations)) ** 2)
    drift = 0.01 * t + 0.002 * x
    noise = 0.02 * rng.standard_normal((n_iterations, n_locations))
    return wave + drift + noise


def _models(n_analyses: int, order: int, *, scalar_stats: bool):
    models = []
    for i in range(n_analyses):
        model = ARModel(
            order,
            lag=1,
            learning_rate=0.05,
            epochs_per_batch=4,
            seed=100 + i,
        )
        if scalar_stats:
            model._x_stats = ScalarRunningStats(order)
            model._y_stats = ScalarRunningStats(1)
        models.append(model)
    return models


def _run_scalar(history, spatial, temporal, *, axis, order, batch_size,
                n_analyses):
    models = _models(n_analyses, order, scalar_stats=True)
    shared = ScalarSeriesStore(spatial.indices())
    collectors = [
        ScalarCollector(
            _scalar_row_provider,
            spatial,
            temporal,
            MiniBatchTrainer(model, batch_size, order),
            axis=axis,
            store=shared,
        )
        for model in models
    ]
    domain = _RowDomain()
    start = time.perf_counter()
    for iteration in range(1, history.shape[0] + 1):
        domain.row = history[iteration - 1]
        for collector in collectors:
            collector.observe(domain, iteration)
    for collector in collectors:
        collector.trainer.finalize()
    return time.perf_counter() - start, models


def _run_vector(history, spatial, temporal, *, axis, order, batch_size,
                n_analyses):
    models = _models(n_analyses, order, scalar_stats=False)
    shared = SeriesStore(spatial.indices(), capacity=temporal.count)
    collectors = [
        DataCollector(
            _vector_row_provider,
            spatial,
            temporal,
            MiniBatchTrainer(model, batch_size, order),
            axis=axis,
            store=shared,
        )
        for model in models
    ]
    domain = _RowDomain()
    start = time.perf_counter()
    for iteration in range(1, history.shape[0] + 1):
        domain.row = history[iteration - 1]
        for collector in collectors:
            collector.observe(domain, iteration)
    for collector in collectors:
        collector.trainer.finalize()
    return time.perf_counter() - start, models


def run_scenario(name, *, n_locations, n_iterations, axis, order=3,
                 batch_size=256, n_analyses=4):
    history = _history(n_iterations, n_locations)
    spatial = IterParam(0, n_locations - 1, 1)
    temporal = IterParam(1, n_iterations, 1)
    kwargs = dict(
        axis=axis,
        order=order,
        batch_size=batch_size,
        n_analyses=n_analyses,
    )
    scalar_seconds, scalar_models = _run_scalar(
        history, spatial, temporal, **kwargs
    )
    vector_seconds, vector_models = _run_vector(
        history, spatial, temporal, **kwargs
    )
    max_delta = 0.0
    for a, b in zip(scalar_models, vector_models):
        max_delta = max(
            max_delta,
            float(np.max(np.abs(a.coefficients - b.coefficients))),
            abs(a.intercept - b.intercept),
        )
    if max_delta > 1e-9:
        raise AssertionError(
            f"{name}: scalar/vector fits diverged (max delta {max_delta:.3e})"
        )
    return {
        "scenario": name,
        "axis": axis,
        "n_locations": n_locations,
        "n_iterations": n_iterations,
        "n_analyses": n_analyses,
        "order": order,
        "batch_size": batch_size,
        "scalar_seconds": round(scalar_seconds, 4),
        "vector_seconds": round(vector_seconds, 4),
        "speedup": round(scalar_seconds / vector_seconds, 2),
        "max_coefficient_delta": max_delta,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="trimmed grid for CI smoke runs",
    )
    parser.add_argument(
        "--output",
        default="BENCH_dataplane.json",
        help="where to write the JSON results",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=0.0,
        help="fail unless the wide-window scenario beats this speedup",
    )
    args = parser.parse_args(argv)

    if args.quick:
        grid = [
            dict(name="wide_spatial", n_locations=128, n_iterations=200,
                 axis="space"),
            dict(name="temporal_block", n_locations=64, n_iterations=300,
                 axis="time"),
        ]
    else:
        grid = [
            dict(name="wide_spatial", n_locations=512, n_iterations=600,
                 axis="space"),
            dict(name="temporal_block", n_locations=256, n_iterations=800,
                 axis="time"),
        ]

    results = [run_scenario(spec.pop("name"), **spec) for spec in grid]

    header = (
        f"{'scenario':<16}{'axis':<7}{'locs':>6}{'iters':>7}"
        f"{'scalar s':>10}{'vector s':>10}{'speedup':>9}"
    )
    print(header)
    print("-" * len(header))
    for r in results:
        print(
            f"{r['scenario']:<16}{r['axis']:<7}{r['n_locations']:>6}"
            f"{r['n_iterations']:>7}{r['scalar_seconds']:>10.3f}"
            f"{r['vector_seconds']:>10.3f}{r['speedup']:>8.1f}x"
        )

    payload = {"quick": args.quick, "scenarios": results}
    with open(args.output, "w") as fh:
        json.dump(payload, fh, indent=2)
    print(f"\nwrote {args.output}")

    wide = results[0]
    if args.min_speedup and wide["speedup"] < args.min_speedup:
        print(
            f"FAIL: wide-window speedup {wide['speedup']}x is below the "
            f"required {args.min_speedup}x"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
