"""Figure 7 — predicted vs real diagnostic curves at 25% training."""

import numpy as np

from repro.analysis import error_rate
from repro.experiments import predicted_full_series
from repro.wdmerger.diagnostics import DIAGNOSTIC_NAMES


def _all_curves():
    return {
        name: predicted_full_series(32, name, 0.25)
        for name in DIAGNOSTIC_NAMES
    }


def test_fig7(benchmark):
    curves = benchmark.pedantic(_all_curves, rounds=1, iterations=1)
    print()
    for name, (times, predicted, real) in curves.items():
        err = error_rate(predicted, real)
        print(f"Fig. 7 {name}: {len(times)} points, error {err:.2f}%")
        # The predicted curve visually overlays the real one: errors in
        # the paper's few-percent band and finite everywhere.
        assert np.all(np.isfinite(predicted))
        assert err < 12.0
        # The prediction tracks the detonation transition: its overall
        # range matches the real curve's within 30%.
        assert np.ptp(predicted) > 0.7 * np.ptp(real)
