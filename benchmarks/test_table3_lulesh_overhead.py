"""Table III — LULESH execution time and feature-extraction overhead."""

from benchmarks.conftest import emit
from repro.experiments import table3


def test_table3(benchmark, full_grid):
    sizes = (30, 60, 90) if full_grid else (30, 60)
    table = benchmark.pedantic(
        table3, kwargs={"sizes": sizes}, rounds=1, iterations=1
    )
    emit(table)
    overheads = table.column("overhead(%)")
    rows = list(zip(table.column("Size"), overheads))
    # On realistically-sized problems the paper's low-single-digit
    # overhead band holds.  The smallest domain (30^3) runs in well
    # under a second on this substrate, so the fixed Python-side FE
    # cost is proportionally visible there (see EXPERIMENTS.md).
    largest = f"{max(sizes)}^3"
    bound = 10.0 if max(sizes) >= 90 else 25.0
    assert max(o for s, o in rows if s == largest) < bound
    assert max(overheads) < 60.0
    # Larger problems get cheaper per rank: the 27-rank rows are faster
    # than the 1-rank rows for every size.
    origins = table.column("origin(s)")
    per_config = len(sizes)
    one_rank = origins[:per_config]
    many_rank = origins[-per_config:]
    for serial, parallel in zip(one_rank, many_rank):
        assert parallel < serial
