"""Ablation benchmarks for the design choices README.md calls out."""

import numpy as np

from repro.analysis import error_rate
from repro.core.ar_model import ARModel
from repro.core.params import IterParam
from repro.core.tracking import detect_gradient_break
from repro.experiments import (
    fit_error_full_run,
    lulesh_reference,
    train_many_from_history,
    wdmerger_reference,
)


def _sweep_batch_sizes():
    """Mini-batch size vs fit quality and update count.

    All batch sizes train in ONE shared-collection replay pass: the
    engine samples each history row once and fans it out to the three
    trainers.
    """
    ref = lulesh_reference(30)
    batch_sizes = (4, 16, 64)
    analyses = train_many_from_history(
        ref.history,
        IterParam(1, 10, 1),
        IterParam(50, int(0.4 * ref.total_iterations), 1),
        [
            dict(order=3, lag=10, batch_size=batch_size)
            for batch_size in batch_sizes
        ],
    )
    return {
        batch_size: (analysis.trainer.updates, analysis.fit_error())
        for batch_size, analysis in zip(batch_sizes, analyses)
    }


def test_ablation_batch_size(benchmark):
    results = benchmark.pedantic(_sweep_batch_sizes, rounds=1, iterations=1)
    print()
    for batch, (updates, err) in results.items():
        print(f"batch={batch}: updates={updates} window fit error={err:.2f}%")
    # Smaller batches mean more updates for the same data stream.
    updates = [results[b][0] for b in (4, 16, 64)]
    assert updates == sorted(updates, reverse=True)
    # Every batch size still reaches a usable fit on the near window.
    assert all(err < 25.0 for _, err in results.values())


def _gd_vs_exact():
    """Streaming GD against the closed-form least-squares ceiling."""
    ref = lulesh_reference(30)
    history = ref.history
    window_end = int(0.4 * ref.total_iterations)
    order, lag = 3, 10
    x_rows, y_rows = [], []
    for t in range(50 + lag, window_end):
        lagged = history[t - lag]
        for loc in range(order, 11):
            x_rows.append(lagged[loc - order + 1: loc + 1][::-1])
            y_rows.append(history[t, loc])
    x = np.array(x_rows)
    y = np.array(y_rows)

    exact = ARModel(order, lag=lag)
    exact.fit_exact(x, y)
    gd = ARModel(order, lag=lag, learning_rate=0.1, epochs_per_batch=16)
    for i in range(0, len(y) - 16, 16):
        gd.partial_fit(x[i: i + 16], y[i: i + 16])

    def evaluate(model):
        preds, reals = [], []
        for t in range(50 + lag, history.shape[0]):
            lagged = history[t - lag]
            feats = np.stack(
                [lagged[loc - order + 1: loc + 1][::-1] for loc in range(order, 11)]
            )
            preds.append(model.predict_many(feats))
            reals.append(history[t, order: 11])
        return error_rate(np.concatenate(preds), np.concatenate(reals))

    return evaluate(gd), evaluate(exact)


def test_ablation_gd_vs_exact(benchmark):
    gd_err, exact_err = benchmark.pedantic(_gd_vs_exact, rounds=1, iterations=1)
    print(f"\nGD error {gd_err:.2f}% vs exact LS {exact_err:.2f}%")
    # Exact LS is the accuracy ceiling; streaming GD lands within a few
    # percentage points of it — the accuracy cost of O(1)-per-iteration
    # training the paper's method accepts.
    assert exact_err <= gd_err + 0.5
    assert gd_err - exact_err < 10.0


def _wide_lag_sweep():
    return {
        lag: fit_error_full_run(30, (1, 10), 0.4, lag=lag, location=10)
        for lag in (5, 10, 25, 50, 100)
    }


def test_ablation_wide_lag_sweep(benchmark):
    errors = benchmark.pedantic(_wide_lag_sweep, rounds=1, iterations=1)
    print()
    for lag, err in errors.items():
        print(f"lag={lag}: error {err:.2f}%")
    # The sweet spot sits at small-to-moderate lags; a 10x oversized lag
    # is strictly worse (extends the paper's Fig. 4 to a full curve).
    assert min(errors, key=errors.get) <= 25
    assert errors[100] > errors[10]


def _smoothing_ablation():
    ref = wdmerger_reference(32)
    series = ref.series["temperature"]
    raw = detect_gradient_break(series, smooth_window=1)
    smoothed = detect_gradient_break(series, smooth_window=3)
    heavy = detect_gradient_break(series, smooth_window=9)
    return raw, smoothed, heavy, ref.detonation_time


def test_ablation_tracking_smoothing(benchmark):
    raw, smoothed, heavy, detonation = benchmark.pedantic(
        _smoothing_ablation, rounds=1, iterations=1
    )
    dt = wdmerger_reference(32).dt
    times = {w: v * dt for w, v in (("raw", raw), ("w3", smoothed), ("w9", heavy))}
    print(f"\ninflection times {times} vs detonation {detonation}")
    # Light smoothing keeps the inflection at the detonation; heavy
    # smoothing may drift but stays in the neighbourhood.
    assert abs(times["w3"] - detonation) < 0.15 * detonation
    assert abs(times["raw"] - detonation) < 0.2 * detonation
    assert abs(times["w9"] - detonation) < 0.3 * detonation
