"""Table II — break-point radius: feature extraction vs ground truth."""

from benchmarks.conftest import emit
from repro.experiments import table2


def test_table2(benchmark):
    table = benchmark.pedantic(table2, rounds=1, iterations=1)
    emit(table)
    thresholds = table.column("Threshold(%)")
    truth = table.column("From Sim.")
    extracted = table.column("Feat. Extraction")
    rows = dict(zip(thresholds, zip(truth, extracted)))
    # Low thresholds saturate at the domain edge (the paper's -16.67% rows).
    assert rows[0.1][1] == 30
    assert rows[0.2][1] == 30
    # High thresholds match the simulation exactly (paper: 5-20% rows).
    assert rows[10.0][0] == rows[10.0][1]
    assert rows[20.0][0] == rows[20.0][1]
    # Mid thresholds are within a couple of elements.
    assert abs(rows[5.0][0] - rows[5.0][1]) <= 3
    # Ground truth radius shrinks monotonically with the threshold.
    assert truth == sorted(truth, reverse=True)
