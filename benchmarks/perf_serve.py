"""Serving benchmark: cold-start vs warm-pool vs content-addressed cache.

Quantifies what ``repro serve`` buys over one-shot CLI runs, in three
latency regimes for the same quick heat-diffusion request:

``cold``
    A fresh ``python repro.py run ...`` subprocess — interpreter boot,
    numpy import and registry construction land inside the measurement,
    exactly what a cron job or shell loop pays per run.

``warm-pool``
    The same request POSTed to a live server whose workers pre-imported
    everything at startup (``no_cache`` forces a real run); the
    response is the full NDJSON stream, so streaming overhead is
    charged honestly.

``cache-hit``
    The identical request again, answered from the content-addressed
    result cache with the stored canonical report bytes — no worker,
    no iteration loop.

Also measures request throughput at ``--clients`` concurrent
connections (cache-hit and warm-miss paths separately), asserts the
stream carries at least two incremental coefficient updates before the
final report (the "analysis state is actually streaming" smoke bound),
verifies the cache hit is byte-identical to the miss that populated
it, and fails unless the hit is ``--min-hit-speedup`` times faster
than the warm-pool run (CI gates on 100x).

Run directly::

    python benchmarks/perf_serve.py [--quick] [--clients 8] \
        [--min-hit-speedup 100] [--output BENCH_serve.json]

Not collected by pytest (not named ``test_*``) — a timing script, not
a correctness test.
"""

from __future__ import annotations

import _bootstrap  # noqa: F401  (makes src/ importable from a checkout)

import argparse
import json
import os
import statistics
import subprocess
import sys
import threading
import time

from repro.scenarios import RunConfig
from repro.serve import ServerThread

REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(os.path.abspath(__file__)), os.pardir)
)

#: The benchmarked request — quick, serial, no cross-check leg.
CONFIG = RunConfig(quick=True, crosscheck=False)
SCENARIO = "heat-diffusion"


def time_cold_run() -> float:
    """Wall seconds for one fresh CLI subprocess running the request."""
    tick = time.perf_counter()
    subprocess.run(
        [
            sys.executable,
            os.path.join(REPO_ROOT, "repro.py"),
            "run",
            SCENARIO,
            "--quick",
            "--no-crosscheck",
        ],
        check=True,
        capture_output=True,
        cwd=REPO_ROOT,
    )
    return time.perf_counter() - tick


def time_requests(make_client, *, n, **run_kwargs):
    """Median wall seconds over ``n`` sequential /run requests."""
    samples = []
    responses = []
    for _ in range(n):
        client = make_client()
        tick = time.perf_counter()
        response = client.run(SCENARIO, CONFIG, **run_kwargs)
        samples.append(time.perf_counter() - tick)
        assert response.status == 200 and response.report["ok"], (
            response.status,
            response.error,
        )
        responses.append(response)
    return statistics.median(samples), responses


def measure_throughput(harness, *, clients, per_client, **run_kwargs):
    """Requests/sec with ``clients`` threads issuing ``per_client`` each."""
    barrier = threading.Barrier(clients + 1)
    failures = []

    def worker():
        client = harness.client(timeout=300)
        barrier.wait()
        for _ in range(per_client):
            response = client.run(SCENARIO, CONFIG, **run_kwargs)
            if response.status != 200 or not response.report["ok"]:
                failures.append(response.error)

    threads = [threading.Thread(target=worker) for _ in range(clients)]
    for thread in threads:
        thread.start()
    barrier.wait()
    tick = time.perf_counter()
    for thread in threads:
        thread.join()
    seconds = time.perf_counter() - tick
    assert not failures, failures[:3]
    return (clients * per_client) / seconds


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="fewer repetitions (CI smoke)")
    parser.add_argument("--clients", type=int, default=8,
                        help="concurrent connections for the throughput leg")
    parser.add_argument("--workers", type=int, default=2,
                        help="warm pool size")
    parser.add_argument("--min-hit-speedup", type=float, default=100.0,
                        help="fail unless cache hit beats the warm-pool "
                        "run by this factor")
    parser.add_argument("--output", metavar="PATH",
                        help="write the result payload as JSON")
    args = parser.parse_args(argv)

    reps = 3 if args.quick else 5
    per_client = 2 if args.quick else 5

    print("cold start: one-shot CLI subprocess ...")
    cold_seconds = time_cold_run()

    with ServerThread(workers=args.workers) as harness:
        # Untimed warmup: touches every layer once (pool pipes, cache
        # insert) so the timed medians measure steady state.  This run
        # populates the cache — later hits must replay ITS bytes.
        populating = harness.client().run(SCENARIO, CONFIG)

        print(f"warm pool: {reps} streamed runs (no_cache) ...")
        warm_seconds, warm_responses = time_requests(
            harness.client, n=reps, no_cache=True
        )
        streamed = warm_responses[-1]
        fitted = [e for e in streamed.progress
                  if e["analyses"] and "coefficients" in e["analyses"][0]]
        assert len(fitted) >= 2, (
            f"expected >=2 incremental coefficient updates in the "
            f"stream, got {len(fitted)}"
        )

        print(f"cache hit: {reps} repeats of the identical request ...")
        hit_seconds, hit_responses = time_requests(harness.client, n=reps)
        assert all(r.cached for r in hit_responses), "expected cache hits"
        assert all(
            r.raw_report == populating.raw_report for r in hit_responses
        ), "cache hit was not byte-identical to the run that populated it"

        print(f"throughput: {args.clients} concurrent clients ...")
        hit_rps = measure_throughput(
            harness, clients=args.clients, per_client=per_client
        )
        miss_rps = measure_throughput(
            harness, clients=args.clients, per_client=per_client,
            no_cache=True,
        )
        stats = harness.client().get("/stats")

    hit_speedup = warm_seconds / hit_seconds
    payload = {
        "scenario": SCENARIO,
        "config": CONFIG.to_json(),
        "workers": args.workers,
        "repetitions": reps,
        "cold_seconds": cold_seconds,
        "warm_pool_seconds": warm_seconds,
        "cache_hit_seconds": hit_seconds,
        "warm_pool_speedup_vs_cold": cold_seconds / warm_seconds,
        "cache_hit_speedup_vs_warm": hit_speedup,
        "cache_hit_speedup_vs_cold": cold_seconds / hit_seconds,
        "streamed_progress_events": len(streamed.progress),
        "incremental_coefficient_updates": len(fitted),
        "concurrent_clients": args.clients,
        "requests_per_client": per_client,
        "cache_hit_requests_per_second": hit_rps,
        "warm_miss_requests_per_second": miss_rps,
        "cache_stats": stats["cache"],
        "byte_identical_hits": True,
    }

    print()
    print(f"cold start (CLI subprocess) : {cold_seconds * 1e3:9.1f} ms")
    print(f"warm pool (streamed run)    : {warm_seconds * 1e3:9.1f} ms "
          f"({payload['warm_pool_speedup_vs_cold']:.1f}x vs cold)")
    print(f"cache hit                   : {hit_seconds * 1e3:9.3f} ms "
          f"({hit_speedup:.0f}x vs warm, "
          f"{payload['cache_hit_speedup_vs_cold']:.0f}x vs cold)")
    print(f"throughput @{args.clients} clients     : "
          f"{hit_rps:8.1f} req/s cached, {miss_rps:6.1f} req/s warm-miss")
    print(f"stream: {len(streamed.progress)} progress events, "
          f"{len(fitted)} carrying fitted coefficients")

    if args.output:
        with open(args.output, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"\nreport: {args.output}")

    if hit_speedup < args.min_hit_speedup:
        print(
            f"FAIL: cache hit speedup {hit_speedup:.1f}x below the "
            f"required {args.min_hit_speedup:g}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
