"""Table V — wdmerger curve-fitting error per diagnostic."""

from benchmarks.conftest import emit
from repro.experiments import table5


def test_table5(benchmark):
    table = benchmark.pedantic(table5, rounds=1, iterations=1)
    emit(table)
    rows = {row[0]: row[1:] for row in table.rows}
    # All errors fall in the paper's band (0.56% - 18.6%), with margin.
    for cells in rows.values():
        assert max(cells) < 20.0
    # Mass is the least sensitive diagnostic (paper's observation).
    mass_spread = max(rows["mass"]) - min(rows["mass"])
    for name in ("temperature", "angular_momentum", "energy"):
        other_spread = max(rows[name]) - min(rows[name])
        assert mass_spread <= other_spread + 1.0
    # At the paper's chosen 25% operating point every diagnostic fits
    # to better than ~10%.
    assert max(row[1] for row in table.rows) < 10.0
