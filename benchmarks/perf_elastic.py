"""Elasticity benchmark: rebalance gain on skewed ranks, recovery cost.

Two legs over the wide-spatial replay scenario on the multiprocessing
backend at 4 ranks:

``rebalance``
    One worker rank is slowed ~4x by an injected per-sample delay
    (calibrated against the fault-free run's measured per-rank
    sampling cost, with a floor so the signal dominates timer noise).
    The skewed scenario runs twice — static sharding vs
    ``rebalance=True`` — and the report compares the **sample-time
    skew** ``max(rank_sample_seconds) / mean(rank_sample_seconds)``:
    the rebalancer migrates window slices away from the slow rank, so
    the skew must drop.

``recovery``
    Rank 2 of 4 is killed mid-run by a deterministic
    :class:`~repro.engine.faults.KillFault`.  The run must complete
    with fit coefficients within 1e-9 of serial; the report records
    the recovery overhead — iterations where rank 0 resampled the dead
    shard before the next chunk boundary resharded it away, plus the
    wall-clock cost against the fault-free run.

Both legs assert fit agreement with the serial engine, so every
reported number is for a run that produced the *same* science.  Run
directly::

    python benchmarks/perf_elastic.py [--quick] \
        [--output BENCH_elastic.json]

Not collected by pytest (the module is not named ``test_*``) — this is
a timing script, not a correctness test.
"""

from __future__ import annotations

import _bootstrap  # noqa: F401  (makes src/ importable from a checkout)

import argparse
import json
import os
import time
from functools import partial

import numpy as np

from repro.core.curve_fitting import CurveFitting
from repro.core.providers import HarmonicProvider
from repro.engine import DistributedEngine, InSituEngine, ReplayApp

RANKS = 4
SLOW_RANK = 2
KILL_RANK = 2

#: Expensive per-location diagnostic (module-level so worker pickling
#: sees one provider identity).
heavy_provider = HarmonicProvider(384)


def make_app(n_iterations: int, n_locations: int, seed: int = 7) -> ReplayApp:
    """Deterministic replay app (module-level: workers rebuild it)."""
    rng = np.random.default_rng(seed)
    t = np.arange(1, n_iterations + 1)[:, None].astype(np.float64)
    x = np.arange(n_locations)[None, :].astype(np.float64)
    wave = 5.0 * np.exp(-0.5 * ((x - 0.35 * t) / (0.06 * n_locations)) ** 2)
    history = wave + 0.01 * t + 0.002 * x
    history += 0.02 * rng.standard_normal((n_iterations, n_locations))
    return ReplayApp(history)


def _analysis(n_locations: int, n_iterations: int) -> CurveFitting:
    return CurveFitting(
        heavy_provider,
        (0, n_locations - 1, 1),
        (1, n_iterations, 1),
        order=3,
        lag=1,
        batch_size=max(256, n_locations),
        epochs_per_batch=2,
        name="wide_spatial",
    )


def _coefficient_delta(a: CurveFitting, b: CurveFitting) -> float:
    return max(
        float(np.max(np.abs(a.model.coefficients - b.model.coefficients))),
        abs(a.model.intercept - b.model.intercept),
    )


def _skew(rank_seconds: np.ndarray) -> float:
    finite = rank_seconds[np.isfinite(rank_seconds)]
    mean = float(finite.mean())
    return float(finite.max()) / mean if mean > 0 else 0.0


def _mp_run(factory, n_locations, n_iterations, **engine_kwargs):
    engine = DistributedEngine(
        backend="multiprocessing",
        n_ranks=RANKS,
        app_factory=factory,
        chunk=8,
        **engine_kwargs,
    )
    analysis = engine.add_analysis(_analysis(n_locations, n_iterations))
    start = time.perf_counter()
    result = engine.run()
    wall = time.perf_counter() - start
    return analysis, result, wall


def run_benchmark(*, n_locations, n_iterations, seed=7):
    factory = partial(make_app, n_iterations, n_locations, seed)

    serial_engine = InSituEngine(factory())
    serial_analysis = serial_engine.add_analysis(
        _analysis(n_locations, n_iterations)
    )
    serial_engine.run()

    # Fault-free baseline: calibrates the slowdown and anchors the
    # recovery-overhead comparison.
    _, clean, clean_wall = _mp_run(factory, n_locations, n_iterations)
    baseline_rank_seconds = float(np.mean(clean.rank_sample_seconds))
    samples_per_rank = (n_locations // RANKS) * n_iterations
    # Extra delay ~= 3x the measured per-rank sampling bill makes the
    # slowed rank ~4x its peers; the floor keeps the injected signal
    # well above scheduler/timer noise on fast machines.
    per_sample = max(3.0 * baseline_rank_seconds / samples_per_rank, 2e-4)
    slow_spec = f"slow:rank={SLOW_RANK},per_sample={per_sample:g}"

    static_analysis, static, static_wall = _mp_run(
        factory, n_locations, n_iterations, faults=slow_spec
    )
    rebal_analysis, rebal, rebal_wall = _mp_run(
        factory, n_locations, n_iterations, faults=slow_spec, rebalance=True
    )
    for label, analysis in (
        ("static-skewed", static_analysis),
        ("rebalanced", rebal_analysis),
    ):
        delta = _coefficient_delta(serial_analysis, analysis)
        if delta > 1e-9:
            raise AssertionError(
                f"{label} fit diverged from serial (delta {delta:.3e})"
            )
    static_skew = _skew(static.rank_sample_seconds)
    rebal_skew = _skew(rebal.rank_sample_seconds)
    rebalance_leg = {
        "slow_rank": SLOW_RANK,
        "per_sample_delay_seconds": per_sample,
        "static": {
            "wall_seconds": round(static_wall, 4),
            "rank_sample_seconds": [
                round(float(s), 4) for s in static.rank_sample_seconds
            ],
            "skew": round(static_skew, 3),
        },
        "rebalanced": {
            "wall_seconds": round(rebal_wall, 4),
            "rank_sample_seconds": [
                round(float(s), 4) for s in rebal.rank_sample_seconds
            ],
            "skew": round(rebal_skew, 3),
            "events": [e.to_json() for e in rebal.recovery_events],
        },
        "skew_reduction": round(static_skew / rebal_skew, 3)
        if rebal_skew > 0
        else None,
    }

    kill_iteration = max(2, n_iterations // 3)
    kill_spec = f"kill:rank={KILL_RANK},iter={kill_iteration}"
    kill_analysis, killed, killed_wall = _mp_run(
        factory, n_locations, n_iterations, faults=kill_spec
    )
    delta = _coefficient_delta(serial_analysis, kill_analysis)
    if delta > 1e-9:
        raise AssertionError(
            f"post-recovery fit diverged from serial (delta {delta:.3e})"
        )
    resampled = sum(
        e.resampled_iterations
        for e in killed.recovery_events
        if e.kind == "reshard"
    )
    recovery_leg = {
        "killed_rank": KILL_RANK,
        "kill_iteration": kill_iteration,
        "wall_seconds": round(killed_wall, 4),
        "fault_free_wall_seconds": round(clean_wall, 4),
        "overhead_seconds": round(killed_wall - clean_wall, 4),
        "resampled_iterations": resampled,
        "max_coefficient_delta": delta,
        "events": [e.to_json() for e in killed.recovery_events],
    }

    return {
        "scenario": "wide_spatial",
        "n_locations": n_locations,
        "n_iterations": n_iterations,
        "ranks": RANKS,
        "rebalance": rebalance_leg,
        "recovery": recovery_leg,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="trimmed scenario for CI smoke"
    )
    parser.add_argument(
        "--output",
        default="BENCH_elastic.json",
        help="where to write the JSON results",
    )
    parser.add_argument(
        "--min-skew-reduction",
        type=float,
        default=1.2,
        help="fail unless rebalancing reduces sample-time skew by at "
        "least this factor",
    )
    args = parser.parse_args(argv)

    if args.quick:
        spec = dict(n_locations=192, n_iterations=60)
    else:
        spec = dict(n_locations=384, n_iterations=120)
    result = run_benchmark(**spec)

    rb = result["rebalance"]
    print(
        f"skewed ranks (rank {rb['slow_rank']} slowed "
        f"{rb['per_sample_delay_seconds']:.2e}s/sample):"
    )
    print(
        f"  static     skew {rb['static']['skew']:.2f}  wall "
        f"{rb['static']['wall_seconds']:.3f}s"
    )
    print(
        f"  rebalanced skew {rb['rebalanced']['skew']:.2f}  wall "
        f"{rb['rebalanced']['wall_seconds']:.3f}s  "
        f"({len(rb['rebalanced']['events'])} event(s))"
    )
    print(f"  skew reduction {rb['skew_reduction']}x")
    rc = result["recovery"]
    print(
        f"rank {rc['killed_rank']} killed at iteration "
        f"{rc['kill_iteration']}:"
    )
    print(
        f"  completed in {rc['wall_seconds']:.3f}s "
        f"(fault-free {rc['fault_free_wall_seconds']:.3f}s, overhead "
        f"{rc['overhead_seconds']:+.3f}s)"
    )
    print(
        f"  {rc['resampled_iterations']} iteration(s) resampled by rank 0, "
        f"fit delta vs serial {rc['max_coefficient_delta']:.2e}"
    )

    payload = {
        "quick": args.quick,
        "cpu_count": os.cpu_count() or 1,
        "results": result,
    }
    with open(args.output, "w") as fh:
        json.dump(payload, fh, indent=2)
    print(f"wrote {args.output}")

    if (
        rb["skew_reduction"] is not None
        and rb["skew_reduction"] < args.min_skew_reduction
    ):
        print(
            f"FAIL: skew reduction {rb['skew_reduction']}x is below the "
            f"required {args.min_skew_reduction}x"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
