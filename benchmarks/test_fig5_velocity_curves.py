"""Figure 5 — velocity distribution over iterations at locations 1-10."""

import numpy as np

from repro.experiments import fig5, lulesh_reference


def test_fig5(benchmark):
    table = benchmark.pedantic(fig5, rounds=1, iterations=1)
    ref = lulesh_reference(30)
    peaks = np.max(ref.history, axis=0)
    print()
    print("Fig. 5 peak |velocity| by location (1..10):",
          np.round(peaks[1:11], 3).tolist())
    # Wave attenuation: the peak decays monotonically outward over the
    # plotted locations, with a severe early drop (paper's key feature).
    assert all(peaks[i] > peaks[i + 1] for i in range(1, 10))
    assert peaks[1] > 5 * peaks[5]
    # The long-format data covers every plotted location.
    locations = set(table.column("location"))
    assert locations == set(range(1, 11))
