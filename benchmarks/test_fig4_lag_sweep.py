"""Figure 4 — fit error at location 10 for tuned vs oversized lag."""

from benchmarks.conftest import emit
from repro.experiments import fig4


def test_fig4(benchmark):
    table = benchmark.pedantic(fig4, rounds=1, iterations=1)
    emit(table)
    tuned = table.rows[0]
    oversized = table.rows[1]
    # The tuned lag beats the oversized one at every training fraction
    # (the paper's lag-50 vs lag-100 contrast).
    for a, b in zip(tuned[1:], oversized[1:]):
        assert a < b
    # And errors shrink as the training window grows, for both lags.
    assert tuned[3] <= tuned[1]
    assert oversized[3] <= oversized[1]
