"""Figure 8 — normalised diagnostics with inflection markers."""

import numpy as np

from repro.experiments import fig8, wdmerger_reference


def test_fig8(benchmark):
    table = benchmark.pedantic(fig8, rounds=1, iterations=1)
    print()
    print(table.title)
    print(table.notes)
    ref = wdmerger_reference(32)
    detonation = ref.detonation_time
    # All four inflection times cluster around the detonation event
    # (the paper's "collection of inflection points closely aligned to
    # the delay-time of 30").
    for part in table.notes.split(": ")[1].split(", "):
        name, value = part.split("=")
        assert abs(float(value) - detonation) < 0.15 * detonation, name
    # Normalised series are zero-mean unit-variance.
    for name in ("temperature", "mass"):
        # Cells are rounded to 4 decimals, so allow that much slack.
        column = np.array(table.column(name))
        assert abs(column.mean()) < 1e-3
        assert abs(column.std() - 1.0) < 1e-2
