"""Table I — LULESH curve-fitting error by interval x training fraction."""

from benchmarks.conftest import emit
from repro.experiments import table1


def test_table1(benchmark):
    table = benchmark.pedantic(table1, rounds=1, iterations=1)
    emit(table)
    near = table.column("40%")[0]
    # The near interval, which the wave fully sweeps inside the window,
    # fits to within ~10% everywhere (paper: 6.5%/6.4%/1.8%).
    assert near < 10.0
    assert table.column("60%")[0] < 10.0
    assert table.column("80%")[0] < 10.0
    # At least one far-interval cell shows the paper's overfit blow-up.
    far_cells = table.rows[1][1:] + table.rows[2][1:]
    assert max(far_cells) > 20.0
