"""Distributed-runtime benchmark: serial engine vs sharded rank runs.

Times a wide-spatial in-situ scenario — a replayed history with an
expensive per-location provider (a harmonic-sum refinement whose cost
is proportional to the number of locations gathered) — through three
execution paths:

``serial``
    The plain :class:`~repro.engine.scheduler.InSituEngine`: one
    full-window provider sweep per matching iteration.

``simcomm``
    The :class:`~repro.engine.distributed.DistributedEngine` on the
    deterministic in-process backend at each rank count.  Reported
    "simulated" seconds combine the slowest rank's measured sampling
    time with the communicator's Hockney ledger — the wall time an
    iteration-synchronous distributed run would see if each rank ran on
    its own core.

``multiprocessing``
    The same engine on real worker processes, once with chunk
    pipelining off and once on.  Reported seconds are actual wall
    clock, so the speedup only materialises when the machine has at
    least as many free cores as ranks — the JSON records ``cpu_count``
    so readers can interpret the numbers.  The pipelined legs
    additionally report an *overlap efficiency*: worker seconds that
    overlapped rank-0 compute, divided by rank 0's busy seconds — how
    much of rank 0's working time the workers spent productively
    stepping ahead instead of waiting their turn.

Every distributed run's fit coefficients are asserted against the
serial engine within 1e-12, so all reported numbers are for *identical*
results.  Run directly::

    python benchmarks/perf_distributed.py [--quick] [--ranks 4,8] \
        [--transport auto|shm|pickle] [--min-pipeline-speedup 1.3] \
        [--output BENCH_distributed.json]

``--quick`` trims the scenario for CI smoke runs.  Not collected by
pytest (the module is not named ``test_*``) — this is a timing script,
not a correctness test.
"""

from __future__ import annotations

import _bootstrap  # noqa: F401  (makes src/ importable from a checkout)

import argparse
import json
import os
from functools import partial

import numpy as np

from repro.core.curve_fitting import CurveFitting
from repro.core.providers import HarmonicProvider
from repro.engine import DistributedEngine, InSituEngine, ReplayApp

#: Expensive per-location diagnostic over the replayed row: one module-
#: level instance so shared-collection grouping and worker pickling
#: both see the same provider identity.
heavy_provider = HarmonicProvider(384)


def make_app(n_iterations: int, n_locations: int, seed: int = 7) -> ReplayApp:
    """Deterministic replay app (module-level: workers rebuild it)."""
    rng = np.random.default_rng(seed)
    t = np.arange(1, n_iterations + 1)[:, None].astype(np.float64)
    x = np.arange(n_locations)[None, :].astype(np.float64)
    wave = 5.0 * np.exp(-0.5 * ((x - 0.35 * t) / (0.06 * n_locations)) ** 2)
    history = wave + 0.01 * t + 0.002 * x
    history += 0.02 * rng.standard_normal((n_iterations, n_locations))
    return ReplayApp(history)


def _analysis(n_locations: int, n_iterations: int) -> CurveFitting:
    return CurveFitting(
        heavy_provider,
        (0, n_locations - 1, 1),
        (1, n_iterations, 1),
        order=3,
        lag=1,
        batch_size=max(256, n_locations),
        epochs_per_batch=2,
        name="wide_spatial",
    )


def _coefficient_delta(a: CurveFitting, b: CurveFitting) -> float:
    return max(
        float(np.max(np.abs(a.model.coefficients - b.model.coefficients))),
        abs(a.model.intercept - b.model.intercept),
    )


def _round_transport_stats(stats):
    """Transport ledger with human-scale rounding for the JSON report."""
    if stats is None:
        return None
    return {
        "transport": stats["transport"],
        "total_bytes_moved": int(stats["total_bytes_moved"]),
        "pipeline": stats.get("pipeline"),
        "per_rank": [
            {
                "rank": row["rank"],
                "bytes_moved": int(row["bytes_moved"]),
                "serialize_seconds": round(float(row["serialize_seconds"]), 6),
                "transfer_seconds": round(float(row["transfer_seconds"]), 6),
                "overlap_seconds": round(float(row["overlap_seconds"]), 6),
                "idle_seconds": round(float(row["idle_seconds"]), 6),
            }
            for row in stats["per_rank"]
        ],
    }


def run_scenario(*, n_locations, n_iterations, simcomm_ranks, mp_ranks,
                 mp_chunk=16, seed=7, transport="auto"):
    factory = partial(make_app, n_iterations, n_locations, seed)

    serial_engine = InSituEngine(factory())
    serial_analysis = serial_engine.add_analysis(
        _analysis(n_locations, n_iterations)
    )
    serial = serial_engine.run()

    simcomm_rows = []
    for ranks in simcomm_ranks:
        engine = DistributedEngine(factory(), n_ranks=ranks)
        analysis = engine.add_analysis(_analysis(n_locations, n_iterations))
        result = engine.run()
        delta = _coefficient_delta(serial_analysis, analysis)
        if delta > 1e-12:
            raise AssertionError(
                f"simcomm {ranks}-rank fit diverged from serial "
                f"(delta {delta:.3e})"
            )
        simulated = float(
            result.max_rank_sample_seconds + result.comm_seconds
        )
        simcomm_rows.append(
            {
                "ranks": ranks,
                "max_rank_sample_seconds": round(
                    result.max_rank_sample_seconds, 4
                ),
                "comm_seconds": round(result.comm_seconds, 6),
                "simulated_sample_speedup": round(
                    float(np.sum(result.rank_sample_seconds)) / simulated, 2
                ),
                "max_coefficient_delta": delta,
            }
        )

    mp_rows = []
    pipeline_rows = []
    for ranks in mp_ranks:
        seconds_by_mode = {}
        for mode in ("off", "on"):
            engine = DistributedEngine(
                backend="multiprocessing",
                n_ranks=ranks,
                app_factory=factory,
                chunk=mp_chunk,
                transport=transport,
                pipeline=mode,
            )
            analysis = engine.add_analysis(
                _analysis(n_locations, n_iterations)
            )
            result = engine.run()
            delta = _coefficient_delta(serial_analysis, analysis)
            if delta > 1e-12:
                raise AssertionError(
                    f"multiprocessing {ranks}-rank (pipeline {mode}) fit "
                    f"diverged from serial (delta {delta:.3e})"
                )
            stats = result.transport_stats
            row = {
                "ranks": ranks,
                "pipeline": mode,
                "seconds": round(result.seconds, 4),
                "speedup": round(serial.seconds / result.seconds, 2),
                "transport": result.transport,
                "transport_stats": _round_transport_stats(stats),
                "max_coefficient_delta": delta,
            }
            if mode == "on":
                worker_overlap = sum(
                    r["overlap_seconds"]
                    for r in stats["per_rank"]
                    if r["rank"] > 0
                )
                rank0_busy = max(
                    result.seconds
                    - stats["per_rank"][0]["idle_seconds"],
                    1e-9,
                )
                row["overlap_efficiency"] = round(
                    worker_overlap / rank0_busy, 3
                )
            seconds_by_mode[mode] = result.seconds
            mp_rows.append(row)
        pipeline_rows.append(
            {
                "ranks": ranks,
                "off_seconds": round(seconds_by_mode["off"], 4),
                "on_seconds": round(seconds_by_mode["on"], 4),
                "pipeline_speedup": round(
                    seconds_by_mode["off"] / seconds_by_mode["on"], 2
                ),
            }
        )

    return {
        "scenario": "wide_spatial",
        "n_locations": n_locations,
        "n_iterations": n_iterations,
        "serial_seconds": round(serial.seconds, 4),
        "simcomm": simcomm_rows,
        "multiprocessing": mp_rows,
        "pipeline_comparison": pipeline_rows,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="trimmed scenario for CI smoke"
    )
    parser.add_argument(
        "--ranks",
        default=None,
        help="comma-separated multiprocessing rank counts (default 4,8; "
        "quick default 2)",
    )
    parser.add_argument(
        "--output",
        default="BENCH_distributed.json",
        help="where to write the JSON results",
    )
    parser.add_argument(
        "--transport",
        default="auto",
        choices=["auto", "shared_memory", "shm", "pickle"],
        help="multiprocessing row transport (shm = shared_memory; auto "
        "picks shared_memory when available, else pickle)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=0.0,
        help="fail unless the best multiprocessing speedup beats this "
        "(only meaningful with cpu_count >= ranks)",
    )
    parser.add_argument(
        "--min-pipeline-speedup",
        type=float,
        default=0.0,
        help="fail unless pipelined wall clock beats non-pipelined by "
        "this factor at some rank count (only meaningful with "
        "cpu_count >= ranks)",
    )
    args = parser.parse_args(argv)

    if args.ranks:
        mp_ranks = [int(r) for r in args.ranks.split(",")]
    else:
        mp_ranks = [2] if args.quick else [4, 8]
    simcomm_ranks = [1, 2] if args.quick else [1, 4, 8]
    if args.quick:
        spec = dict(n_locations=192, n_iterations=60)
    else:
        spec = dict(n_locations=768, n_iterations=200)

    cpu_count = os.cpu_count() or 1
    cpu_limited = cpu_count < max(mp_ranks, default=1)
    if cpu_limited:
        print(
            f"WARNING: {cpu_count} cpu(s) visible but up to "
            f"{max(mp_ranks)} ranks requested — multiprocessing wall-clock "
            "numbers below measure core contention, not transport speedup; "
            "the JSON is flagged cpu_limited"
        )
    result = run_scenario(
        simcomm_ranks=simcomm_ranks, mp_ranks=mp_ranks,
        transport=args.transport, **spec
    )

    print(
        f"serial: {result['serial_seconds']:.3f}s "
        f"({spec['n_locations']} locations x {spec['n_iterations']} iters, "
        f"{cpu_count} cpus)"
    )
    for row in result["simcomm"]:
        print(
            f"simcomm  ranks={row['ranks']:>2}  max-rank sample "
            f"{row['max_rank_sample_seconds']:.4f}s  comm "
            f"{row['comm_seconds']:.6f}s  simulated sampling speedup "
            f"{row['simulated_sample_speedup']:.2f}x"
        )
    for row in result["multiprocessing"]:
        stats = row["transport_stats"]
        moved = stats["total_bytes_moved"] if stats else 0
        worker_rows = [r for r in stats["per_rank"] if r["rank"] > 0] if stats else []
        serialize = sum(r["serialize_seconds"] for r in worker_rows)
        transfer = sum(r["transfer_seconds"] for r in worker_rows)
        overlap = (
            f"  overlap-eff {row['overlap_efficiency']:.3f}"
            if "overlap_efficiency" in row
            else ""
        )
        print(
            f"mp       ranks={row['ranks']:>2}  wall {row['seconds']:.3f}s  "
            f"speedup {row['speedup']:.2f}x  pipeline={row['pipeline']}  "
            f"transport={row['transport']}  "
            f"moved {moved / 1e6:.1f}MB  serialize {serialize:.4f}s  "
            f"transfer {transfer:.4f}s{overlap}"
        )
    for row in result["pipeline_comparison"]:
        print(
            f"pipeline ranks={row['ranks']:>2}  off {row['off_seconds']:.3f}s"
            f"  on {row['on_seconds']:.3f}s  "
            f"speedup {row['pipeline_speedup']:.2f}x"
        )
    best = max((r["speedup"] for r in result["multiprocessing"]), default=0.0)
    best_pipeline = max(
        (r["pipeline_speedup"] for r in result["pipeline_comparison"]),
        default=0.0,
    )
    if cpu_limited:
        print(
            f"note: only {cpu_count} cpu(s) visible — multiprocessing "
            "wall-clock speedup needs one core per rank; the simcomm rows "
            "carry the modelled scaling"
        )

    mp_transports = {r["transport"] for r in result["multiprocessing"]}
    payload = {
        "quick": args.quick,
        "cpu_count": cpu_count,
        "cpu_limited": cpu_limited,
        # the resolved transport the mp rows actually ran on, not the
        # raw flag (--transport auto/shm resolve at engine start)
        "transport": mp_transports.pop() if len(mp_transports) == 1 else args.transport,
        "results": result,
    }
    with open(args.output, "w") as fh:
        json.dump(payload, fh, indent=2)
    print(f"wrote {args.output}")

    if args.min_speedup and best < args.min_speedup:
        print(
            f"FAIL: best multiprocessing speedup {best}x is below the "
            f"required {args.min_speedup}x"
        )
        return 1
    if args.min_pipeline_speedup and best_pipeline < args.min_pipeline_speedup:
        print(
            f"FAIL: best pipeline-on/off speedup {best_pipeline}x is below "
            f"the required {args.min_pipeline_speedup}x"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
