"""Table VII — wdmerger overhead and early-termination acceleration."""

from benchmarks.conftest import emit
from repro.experiments import table7


def test_table7(benchmark, full_grid):
    resolutions = (16, 32, 48) if full_grid else (16, 32)
    table = benchmark.pedantic(
        table7, kwargs={"resolutions": resolutions}, rounds=1, iterations=1
    )
    emit(table)
    rows = [dict(zip(table.headers, row)) for row in table.rows]
    by_res = {}
    for row in rows:
        by_res.setdefault(row["Resolution"], []).append(row)
    # At 32^3 and up the paper's low-overhead band holds.  Sub-second
    # measured runs carry scheduler noise, so the bound tightens only
    # on the multi-second 48^3 runs of the full grid.
    for res, res_rows in by_res.items():
        if res == "16^3":
            # Substrate-scale artifact (see EXPERIMENTS.md): our 16^3
            # per-step cost is tiny, so the fixed FE cost is visible.
            continue
        bound = 12.0 if res == "48^3" else 25.0
        assert max(r["Ovh(%)"] for r in res_rows) < bound
    # Early termination delivers substantial acceleration at realistic
    # resolutions (paper: 48% -> 67% growing with resolution).  The
    # sub-millisecond 16^3 runs are too noisy for a tight bound.
    mean_acc = {
        res: sum(r["Acc(%)"] for r in res_rows) / len(res_rows)
        for res, res_rows in by_res.items()
    }
    for res, acc in mean_acc.items():
        if res != "16^3":
            assert acc > 30.0, (res, acc)
    largest = f"{max(resolutions)}^3"
    smallest = f"{min(resolutions)}^3"
    assert mean_acc[largest] >= mean_acc[smallest] - 5.0
