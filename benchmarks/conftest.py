"""Shared configuration for the benchmark suite.

Each benchmark regenerates one table or figure of the paper, prints it,
and asserts the reproduced *shape* (who wins, where the crossovers
fall).  Set ``REPRO_BENCH_FULL=1`` to run every benchmark at the
paper's full parameter grid (several minutes); the default trims the
heaviest sweeps so the whole suite finishes quickly.

Path setup is centralised: pytest runs import ``repro`` through the
repository-root ``conftest.py`` (which inserts ``src/``), and the
directly-executed timing scripts go through ``benchmarks/_bootstrap.py``
— no ``PYTHONPATH`` preparation needed anywhere.
"""

import os

import pytest


FULL = os.environ.get("REPRO_BENCH_FULL", "0") == "1"


@pytest.fixture(scope="session")
def full_grid() -> bool:
    return FULL


def emit(table) -> None:
    """Print a rendered table under pytest -s / captured output."""
    print()
    print(table.render())
