"""Make ``import repro`` work when benchmark scripts run directly.

Mirrors ``examples/_bootstrap.py`` for the timing scripts
(``perf_dataplane.py``, ``perf_distributed.py``) that are executed as
plain scripts rather than through pytest (pytest runs get the path
from the repository-root ``conftest.py``).
"""

import os
import sys

_SRC = os.path.abspath(
    os.path.join(os.path.dirname(os.path.abspath(__file__)), os.pardir, "src")
)
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
