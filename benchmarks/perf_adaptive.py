"""Adaptive-cadence benchmark: full-cadence sampling vs converged probes.

Runs each workload twice through the unified execution driver — once at
full collection cadence (the bit-identical default) and once with the
:class:`~repro.engine.cadence.CadenceController` attached — and reports
the **sampling-cost reduction**: how many provider sweeps the adaptive
run paid (collected rows + verification probes) against what full
cadence would have swept, with the validation error of both runs next
to it so the saving is never quoted without its accuracy bill.

Three legs:

``heat-diffusion`` / ``oscillator-ringdown``
    The analytic scenarios, driven through ``scenarios.run_scenario``
    with their spec-declared cadence tolerances; errors are measured
    against closed-form ground truth and must stay inside each spec's
    stated tolerance in both modes.

``lulesh_wide_spatial``
    A wide-spatial-window curve fit over a real LULESH Sedov blast
    (the paper's material-deformation variable at every interior
    element, sampled on the paper's lag-matched temporal stride).
    Provider sweeps are counted by instrumenting the batch provider,
    so probe sweeps are charged too.  The blast is genuinely
    non-stationary while the wave transits the window, so the expected
    behaviour is drift snap-backs during transit and widened sampling
    on the decaying tail — a smaller but honest reduction.

An untimed warmup pass (one quick heat-diffusion run) precedes the
timed legs so allocator pools, import caches and — when the ``auto``
kernel knob resolves to numba — JIT compilation never land inside a
timed region; the payload records the resolved ``kernel_backend`` and
the ``warmup_seconds`` it cost.

Run directly::

    python benchmarks/perf_adaptive.py [--quick] \
        [--min-reduction 2] [--output BENCH_adaptive.json]

``--min-reduction`` fails the run unless the best scenario beats the
bound (CI gates on 2x).  Not collected by pytest (the module is not
named ``test_*``) — this is a timing script, not a correctness test.
"""

from __future__ import annotations

import _bootstrap  # noqa: F401  (makes src/ importable from a checkout)

import argparse
import json
import time

from repro import scenarios
from repro.core import kernels as kernel_registry
from repro.core.curve_fitting import CurveFitting
from repro.core.params import IterParam
from repro.engine import CadenceController, CadencePolicy, InSituEngine

#: Sweep counter shared by the instrumented LULESH provider.
_SWEEPS = {"n": 0}


def _velocity(domain, location):
    return domain.xd(location)


def _velocity_batch(domain, locations):
    _SWEEPS["n"] += 1
    return domain.xd_batch(locations)


_velocity.batch = _velocity_batch


def bench_scenario(name: str, *, quick: bool) -> dict:
    """Baseline vs adaptive run of one registered scenario."""
    spec = scenarios.get(name)
    baseline = scenarios.run_scenario(
        name, config=scenarios.RunConfig(quick=quick)
    )
    adaptive = scenarios.run_scenario(
        name, config=scenarios.RunConfig(quick=quick, adaptive=True)
    )
    totals = adaptive.result.cadence["totals"]
    if not (baseline.accuracy_ok and adaptive.accuracy_ok):
        raise AssertionError(
            f"{name}: validator exceeded tolerance "
            f"(baseline {baseline.error:.4f}, adaptive {adaptive.error:.4f} "
            f"vs {spec.tolerance:g})"
        )
    return {
        "scenario": name,
        "tolerance": spec.tolerance,
        "cadence": dict(spec.cadence),
        "baseline_error": baseline.error,
        "adaptive_error": adaptive.error,
        "baseline_rows": totals["matching_iterations"],
        "adaptive_rows": totals["collected"] + totals["probed"],
        "snapbacks": totals["snapbacks"],
        "max_probe_residual": totals["max_probe_residual"],
        "sampling_reduction": round(totals["sampling_reduction"], 2),
        "baseline_seconds": round(baseline.seconds, 4),
        "adaptive_seconds": round(adaptive.seconds, 4),
    }


def bench_lulesh_wide(*, quick: bool) -> dict:
    """Baseline vs adaptive wide-spatial curve fit on a Sedov blast."""
    from repro.experiments.common import lulesh_reference
    from repro.lulesh import LuleshSimulation

    size = 16 if quick else 30
    total = lulesh_reference(size).total_iterations
    spatial = IterParam(1, size - 2, 1)
    temporal = IterParam(50, int(0.9 * total), 10)
    # The quick grid's window holds ~30 rows in total, so the warm-up
    # must shrink with it or the cadence never widens.
    policy = CadencePolicy(
        drift_tolerance=0.15, warmup_rows=12 if quick else 30
    )

    def one_run(adaptive: bool):
        _SWEEPS["n"] = 0
        sim = LuleshSimulation(size, maintain_field=False)
        engine = InSituEngine(
            sim,
            policy="all",
            cadence=CadenceController(policy) if adaptive else None,
        )
        analysis = engine.add_analysis(
            CurveFitting(
                _velocity,
                spatial,
                temporal,
                axis="space",
                order=3,
                lag=10,
                batch_size=16,
                name="wide-spatial",
            )
        )
        tick = time.perf_counter()
        result = engine.run()
        seconds = time.perf_counter() - tick
        return result, analysis, _SWEEPS["n"], seconds

    base_result, base_fit, base_sweeps, base_seconds = one_run(False)
    ad_result, ad_fit, ad_sweeps, ad_seconds = one_run(True)
    totals = ad_result.cadence["totals"]
    if ad_sweeps >= base_sweeps:
        raise AssertionError(
            f"lulesh_wide_spatial: adaptive paid {ad_sweeps} sweeps vs "
            f"{base_sweeps} at full cadence — no reduction"
        )
    return {
        "scenario": "lulesh_wide_spatial",
        "size": size,
        "window_width": spatial.count,
        "baseline_error": base_fit.fit_error(),
        "adaptive_error": ad_fit.fit_error(),
        "baseline_rows": base_sweeps,
        "adaptive_rows": ad_sweeps,
        "snapbacks": totals["snapbacks"],
        "max_probe_residual": totals["max_probe_residual"],
        "sampling_reduction": round(base_sweeps / ad_sweeps, 2),
        "baseline_seconds": round(base_seconds, 4),
        "adaptive_seconds": round(ad_seconds, 4),
    }


def warmup() -> "tuple[str, float]":
    """One untimed pass before any timed leg.

    Resolves the ``auto`` kernel backend (absorbing JIT compilation
    when numba is importable) and drives one quick scenario end to end
    so the timed runs below measure steady state.  Returns the resolved
    backend name and the warmup wall seconds.
    """
    tick = time.perf_counter()
    backend = kernel_registry.get_backend()
    scenarios.run_scenario(
        "heat-diffusion", config=scenarios.RunConfig(quick=True)
    )
    scenarios.run_scenario(
        "heat-diffusion", config=scenarios.RunConfig(quick=True, adaptive=True)
    )
    return backend.name, time.perf_counter() - tick


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="trimmed grid for CI smoke runs",
    )
    parser.add_argument(
        "--output",
        default="BENCH_adaptive.json",
        help="where to write the JSON results",
    )
    parser.add_argument(
        "--min-reduction",
        type=float,
        default=0.0,
        help="fail unless the best sampling-cost reduction beats this",
    )
    args = parser.parse_args(argv)

    kernel_backend, warmup_seconds = warmup()
    results = [
        bench_scenario("heat-diffusion", quick=args.quick),
        bench_scenario("oscillator-ringdown", quick=args.quick),
        bench_lulesh_wide(quick=args.quick),
    ]

    header = (
        f"{'scenario':<22}{'rows full':>10}{'rows adpt':>10}{'reduction':>10}"
        f"{'err full':>10}{'err adpt':>10}{'snaps':>6}"
    )
    print(header)
    print("-" * len(header))
    for r in results:
        print(
            f"{r['scenario']:<22}{r['baseline_rows']:>10}"
            f"{r['adaptive_rows']:>10}{r['sampling_reduction']:>9.2f}x"
            f"{r['baseline_error']:>10.4f}{r['adaptive_error']:>10.4f}"
            f"{r['snapbacks']:>6}"
        )

    payload = {
        "quick": args.quick,
        "kernel_backend": kernel_backend,
        "warmup_seconds": round(warmup_seconds, 4),
        "scenarios": results,
    }
    with open(args.output, "w") as fh:
        json.dump(payload, fh, indent=2)
    print(f"\nwrote {args.output}")

    best = max(r["sampling_reduction"] for r in results)
    if args.min_reduction and best < args.min_reduction:
        print(
            f"FAIL: best sampling-cost reduction {best}x is below the "
            f"required {args.min_reduction}x"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
