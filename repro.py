"""Launcher: drive the ``repro`` CLI from a plain checkout.

``python -m repro`` only works once ``src/`` is importable; this
module makes that true from the repository root with no environment
preparation, in both spellings:

* ``python repro.py run heat-diffusion --quick`` — the script inserts
  ``src/`` and dispatches to :func:`repro.cli.main`.
* ``python -m repro ...`` from the checkout root — the interpreter
  resolves ``repro`` to THIS file (the working directory precedes
  ``src/`` on ``sys.path``), which then bootstraps the path and runs
  the CLI exactly like the packaged ``repro/__main__.py`` would.

When imported under the name ``repro`` (e.g. ``python -m
repro.experiments.runner`` from the root), it replaces itself in
``sys.modules`` with the real package so submodule imports resolve.
"""

import os
import sys

# src/ must precede the checkout root (where THIS file shadows the
# package), even when PYTHONPATH already mentions it further back —
# otherwise the hand-over import below resolves to this file again.
_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
if _SRC in sys.path:
    sys.path.remove(_SRC)
sys.path.insert(0, _SRC)

if __name__ == "__main__":
    from repro.cli import main

    sys.exit(main())
elif __name__ == "repro":
    # Imported as the `repro` module from the checkout root: hand over
    # to the real package (importlib re-reads sys.modules after module
    # execution, so the swap is what the importer returns).
    import importlib

    del sys.modules[__name__]
    importlib.import_module(__name__)
else:
    # A spawn-started multiprocessing child re-running the launcher as
    # "__mp_main__" for interpreter preparation: the sys.path fix above
    # is all it needs — real imports resolve to the package.
    pass
